"""Cross-module integration scenarios.

These exercise realistic multi-query deployments of the DSMS: several
sampling queries sharing one instance, cascaded sampling (the paper §8's
"ongoing work" teaser), exact-vs-sampled comparisons, and the DDoS story.
"""

from collections import Counter, defaultdict

import pytest

from repro import Gigascope, TCP_SCHEMA, TraceConfig, research_center_feed
from repro.dsms.cost import CostModel
from repro.algorithms import (
    HEAVY_HITTERS_QUERY,
    MIN_HASH_QUERY,
    PREFILTER_QUERY,
    RESERVOIR_QUERY,
    SUBSET_SUM_QUERY,
    basic_subset_sum_library,
    heavy_hitters_library,
    reservoir_library,
    subset_sum_library,
    subset_sum_query,
)


@pytest.fixture(scope="module")
def trace():
    config = TraceConfig(duration_seconds=60, rate_scale=0.02, seed=314)
    return list(research_center_feed(config))


class TestSimultaneousQueries:
    """The paper ran its query sets simultaneously on one tap (§7.1)."""

    def test_exact_and_sampled_side_by_side(self, trace):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        exact = gs.add_query(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/20 as tb", name="exact"
        )
        sampled = gs.add_query(
            SUBSET_SUM_QUERY.format(window=20, target=100), name="ss"
        )
        gs.run(iter(trace))

        actual = {row["tb"]: row[1] for row in exact.results}
        estimates = defaultdict(float)
        for row in sampled.results:
            estimates[row["tb"]] += row[3]
        for window in list(sorted(actual))[1:]:
            assert estimates[window] == pytest.approx(actual[window], rel=0.12)

    def test_three_algorithms_one_instance(self, trace):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.use_stateful_library(reservoir_library(tolerance=5))
        gs.use_stateful_library(heavy_hitters_library(bucket_width=100))
        ss = gs.add_query(SUBSET_SUM_QUERY.format(window=20, target=50), name="ss")
        rs = gs.add_query(RESERVOIR_QUERY.format(window=20, target=50), name="rs")
        hh = gs.add_query(HEAVY_HITTERS_QUERY.format(window=20, bucket=100), name="hh")
        mh = gs.add_query(MIN_HASH_QUERY.format(window=20, k=20), name="mh")
        gs.run(iter(trace))

        assert ss.results and rs.results and hh.results and mh.results
        # Reservoir emits exactly its target per full window.
        per_window = Counter(row["tb"] for row in rs.results)
        for window, count in per_window.items():
            assert count == 50

    def test_queries_do_not_interfere(self, trace):
        # Running the subset-sum query alone or with neighbours must give
        # identical output (states are isolated per query).
        def run(with_neighbours):
            gs = Gigascope()
            gs.register_stream(TCP_SCHEMA)
            gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
            if with_neighbours:
                gs.use_stateful_library(reservoir_library())
                gs.add_query(RESERVOIR_QUERY.format(window=20, target=20),
                             name="rs")
            handle = gs.add_query(
                SUBSET_SUM_QUERY.format(window=20, target=50), name="ss"
            )
            gs.run(iter(trace))
            return [tuple(row.values) for row in handle.results]

        assert run(False) == run(True)


class TestCascadedSampling:
    """Paper §8: "cascading one type of stream sampling inside a different
    type of stream sampling group" — here a reservoir query consuming the
    output of a subset-sum prefilter."""

    def test_reservoir_over_prefiltered_stream(self, trace):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(basic_subset_sum_library())
        gs.use_stateful_library(reservoir_library(tolerance=5))
        gs.add_query(PREFILTER_QUERY.format(z=2000), name="pre",
                     keep_results=False)
        cascade_text = RESERVOIR_QUERY.format(window=20, target=20).replace(
            "FROM TCP", "FROM pre"
        )
        handle = gs.add_query(cascade_text, name="cascade")
        gs.run(iter(trace))

        per_window = Counter(row["tb"] for row in handle.results)
        assert per_window
        assert all(count <= 20 for count in per_window.values())

    def test_dynamic_over_prefilter_preserves_estimates(self, trace):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(basic_subset_sum_library())
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        total = sum(r["len"] for r in trace) / 3  # approximate window volume
        z_dyn = total / 100
        gs.add_query(PREFILTER_QUERY.format(z=z_dyn / 10), name="pre",
                     keep_results=False)
        handle = gs.add_query(
            subset_sum_query(window=20, target=100, stream="pre"), name="ss"
        )
        gs.run(iter(trace))
        actual = defaultdict(int)
        for record in trace:
            actual[record["time"] // 20] += record["len"]
        estimates = defaultdict(float)
        for row in handle.results:
            estimates[row["tb"]] += row[3]
        for window in sorted(actual)[1:]:
            assert estimates[window] == pytest.approx(actual[window], rel=0.2)


class TestCostIsolation:
    def test_accounts_per_query(self, trace):
        cost = CostModel()
        gs = Gigascope(cost_model=cost)
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library())
        gs.add_query(SUBSET_SUM_QUERY.format(window=20, target=50), name="ss")
        gs.add_query("SELECT len FROM TCP WHERE len > 1000", name="sel",
                     keep_results=False)
        gs.run(iter(trace))
        accounts = cost.accounts()
        assert accounts["ss"] > 0
        assert accounts["ss__lowsel"] > accounts["ss"]  # copies dominate
        assert accounts["sel"] > 0

    def test_window_stats_cover_whole_run(self, trace):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library())
        handle = gs.add_query(
            SUBSET_SUM_QUERY.format(window=20, target=50), name="ss"
        )
        gs.run(iter(trace))
        stats = handle.operator.window_stats
        assert [s.window[0] for s in stats] == [0, 1, 2]
        assert sum(s.tuples_seen for s in stats) == len(trace)
