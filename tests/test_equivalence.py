"""Differential testing: operators vs independent reference models.

Two oracles:

* the windowed AggregationOperator against a 20-line dict-based reference
  over randomly generated streams (hypothesis);
* the SamplingOperator configured with vacuous sampling clauses against
  the AggregationOperator — with nothing to sample away, the generic
  operator must degenerate to plain grouped aggregation.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsms.operators import build_operator
from repro.dsms.parser.planner import compile_query
from repro.dsms.aggregates import default_aggregate_registry
from repro.dsms.functions import default_function_registry
from repro.dsms.parser.analyzer import Registries
from repro.dsms.stateful import StatefulLibrary
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA
from repro.core.superaggregates import default_superaggregate_registry


def fresh_registries():
    return Registries(
        schemas={"TCP": TCP_SCHEMA},
        scalars=default_function_registry(),
        aggregates=default_aggregate_registry(),
        superaggregates=default_superaggregate_registry(),
        stateful=StatefulLibrary(),
    )


def packets(specs):
    """specs: (time, src, length) with monotone times enforced by sort."""
    ordered = sorted(specs, key=lambda s: s[0])
    return [
        Record(TCP_SCHEMA, (t, i + 1, s, 2, l, 1024, 80, 6))
        for i, (t, s, l) in enumerate(ordered)
    ]


def reference_aggregate(records, window, min_count=None):
    """Dict-based oracle for SELECT tb, srcIP, sum(len), count(*)."""
    sums = defaultdict(int)
    counts = defaultdict(int)
    for record in records:
        key = (record["time"] // window, record["srcIP"])
        sums[key] += record["len"]
        counts[key] += 1
    rows = {
        (tb, src, sums[(tb, src)], counts[(tb, src)])
        for (tb, src) in sums
        if min_count is None or counts[(tb, src)] >= min_count
    }
    return rows


stream_strategy = st.lists(
    st.tuples(
        st.integers(0, 50),      # time
        st.integers(1, 5),       # srcIP
        st.integers(40, 1500),   # len
    ),
    min_size=1,
    max_size=300,
)

QUERY = (
    "SELECT tb, srcIP, sum(len), count(*) FROM TCP"
    " GROUP BY time/7 as tb, srcIP"
)


class TestAggregationVsReference:
    @given(stream_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, specs):
        records = packets(specs)
        plan = compile_query(QUERY, fresh_registries())
        op = build_operator(plan)
        rows = {tuple(r.values) for r in op.run(records)}
        assert rows == reference_aggregate(records, 7)

    @given(stream_strategy)
    @settings(max_examples=30, deadline=None)
    def test_having_matches_reference(self, specs):
        records = packets(specs)
        plan = compile_query(QUERY + " HAVING count(*) >= 2", fresh_registries())
        op = build_operator(plan)
        rows = {tuple(r.values) for r in op.run(records)}
        assert rows == reference_aggregate(records, 7, min_count=2)


class TestSamplingDegeneratesToAggregation:
    @given(stream_strategy)
    @settings(max_examples=40, deadline=None)
    def test_vacuous_sampling_equals_aggregation(self, specs):
        records = packets(specs)

        agg_plan = compile_query(QUERY, fresh_registries())
        agg_rows = {tuple(r.values) for r in build_operator(agg_plan).run(records)}

        # Never-triggering cleaning + always-true clauses: the sampling
        # operator must produce identical groups.
        sampling_query = (
            QUERY
            + " SUPERGROUP tb"
            + " HAVING count(*) > 0"
            + " CLEANING WHEN count_distinct$(*) < 0"
            + " CLEANING BY count(*) > 0"
        )
        sampling_plan = compile_query(sampling_query, fresh_registries())
        assert sampling_plan.kind == "sampling"
        sampling_rows = {
            tuple(r.values)
            for r in build_operator(sampling_plan).run(records)
        }
        assert sampling_rows == agg_rows

    @given(stream_strategy)
    @settings(max_examples=30, deadline=None)
    def test_count_distinct_superagg_counts_groups(self, specs):
        records = packets(specs)
        query = (
            "SELECT tb, srcIP, count_distinct$(*) FROM TCP"
            " GROUP BY time/7 as tb, srcIP SUPERGROUP tb"
        )
        plan = compile_query(query, fresh_registries())
        rows = list(build_operator(plan).run(records))
        # Within each window, the output-time count_distinct$ equals the
        # number of surviving groups of that window.
        per_window = defaultdict(list)
        for row in rows:
            per_window[row["tb"]].append(row[2])
        for window, values in per_window.items():
            assert set(values) == {len(values)}
