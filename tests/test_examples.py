"""Smoke tests: every example script must run end to end.

Examples are the public face of the library; these tests import each one
from ``examples/`` and run its ``main()``, so a refactor that breaks an
example fails the suite rather than the first reader's terminal.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def _load(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def test_example_inventory():
    # The README advertises these; keep the list honest.
    expected = {
        "quickstart",
        "network_monitoring",
        "heavy_hitters_report",
        "minhash_similarity",
        "reservoir_vs_operator",
        "flow_sampling_ddos",
        "distinct_count_report",
        "prototype_new_algorithm",
    }
    assert expected <= set(EXAMPLES)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
