"""Sampling-operator edge cases beyond the main semantics suite."""

import pytest

from repro.dsms.operators import build_operator
from repro.dsms.parser.planner import compile_query
from repro.dsms.stateful import StatefulLibrary, StatefulState
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA


def packet(time=0, uts=0, src=1, dst=2, length=100):
    return Record(TCP_SCHEMA, (time, uts, src, dst, length, 1024, 80, 6))


def build(text, registries, library=None):
    if library is not None:
        registries.stateful = registries.stateful.merge(library)
    return build_operator(compile_query(text, registries))


class TestMultipleSupergroups:
    QUERY = (
        "SELECT tb, srcIP, HX FROM TCP"
        " WHERE HX <= Kth_smallest_value$(HX, 2)"
        " GROUP BY time/10 as tb, srcIP, H(destIP) as HX"
        " SUPERGROUP tb, srcIP"
        " CLEANING WHEN count_distinct$(*) >= 2"
        " CLEANING BY HX <= Kth_smallest_value$(HX, 2)"
    )

    def test_cleaning_confined_to_triggering_supergroup(self, registries):
        op = build(self.QUERY, registries)
        # Source 1 gets many destinations (its supergroup cleans);
        # source 2 gets exactly one (never cleans, never evicts).
        for i in range(20):
            op.process(packet(time=0, uts=i, src=1, dst=i))
        op.process(packet(time=0, uts=100, src=2, dst=999))
        outs = op.finish()
        by_src = {}
        for o in outs:
            by_src.setdefault(o["srcIP"], set()).add(o["HX"])
        assert len(by_src[1]) == 2  # KMV trimmed to k
        assert len(by_src[2]) == 1  # untouched

    def test_supergroup_count_independent(self, registries):
        op = build(self.QUERY, registries)
        for src in (1, 2, 3):
            for i in range(5):
                op.process(packet(time=0, uts=src * 100 + i, src=src, dst=i))
        assert op.tables.supergroup_count == 3


class TestDegenerateQueries:
    def test_no_aggregates_at_all(self, registries):
        op = build(
            "SELECT tb, srcIP FROM TCP GROUP BY time/10 as tb, srcIP"
            " SUPERGROUP tb",
            registries,
        )
        op.process(packet(src=1))
        op.process(packet(src=1))
        op.process(packet(src=2))
        outs = op.finish()
        assert {o["srcIP"] for o in outs} == {1, 2}

    def test_derived_groupby_var_in_where(self, registries):
        # WHERE references tb, a derived group-by variable.
        op = build(
            "SELECT tb, count(*) FROM TCP WHERE tb > 0"
            " GROUP BY time/10 as tb SUPERGROUP tb",
            registries,
        )
        op.process(packet(time=5))    # tb=0: rejected
        op.process(packet(time=15))   # tb=1: admitted (closes window 0)
        outs = op.finish()
        assert len(outs) == 1 and outs[0][1] == 1

    def test_arithmetic_over_aggregates_in_select(self, registries):
        op = build(
            "SELECT tb, sum(len) / count(*) FROM TCP"
            " GROUP BY time/10 as tb SUPERGROUP tb",
            registries,
        )
        op.process(packet(length=100))
        op.process(packet(length=200))
        outs = op.finish()
        assert outs[0][1] == 150

    def test_empty_stream(self, registries):
        op = build(
            "SELECT tb, count(*) FROM TCP GROUP BY time/10 as tb"
            " SUPERGROUP tb",
            registries,
        )
        assert op.finish() == []
        assert op.window_stats == []

    def test_single_tuple_stream(self, registries):
        op = build(
            "SELECT tb, count(*) FROM TCP GROUP BY time/10 as tb"
            " SUPERGROUP tb",
            registries,
        )
        op.process(packet())
        outs = op.finish()
        assert outs[0][1] == 1


class TestStateSharing:
    def test_two_sfun_families_one_query(self, registries):
        """Two independent STATE declarations coexist per supergroup."""
        library = StatefulLibrary()

        @library.state("state_a")
        class StateA(StatefulState):
            def __init__(self):
                self.n = 0

        @library.state("state_b")
        class StateB(StatefulState):
            def __init__(self):
                self.n = 0

        @library.sfun("bump_a", state="state_a")
        def bump_a(state):
            state.n += 1
            return True

        @library.sfun("read_b", state="state_b")
        def read_b(state):
            state.n += 10
            return state.n

        op = build(
            "SELECT tb, read_b() FROM TCP WHERE bump_a() = TRUE"
            " GROUP BY time/10 as tb SUPERGROUP tb",
            registries,
            library,
        )
        op.process(packet())
        op.process(packet())
        outs = op.finish()
        # read_b's state is independent of bump_a's: one SELECT-time call.
        assert outs[0][1] == 10
        spec_states = op.spec.state_names
        assert set(spec_states) == {"state_a", "state_b"}
