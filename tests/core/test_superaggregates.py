"""Superaggregates: incremental maintenance under add/evict."""

import pytest

from repro.errors import ExecutionError, RegistryError
from repro.core.superaggregates import (
    CountDistinctSuper,
    CountSuper,
    KthSmallestSuper,
    MaxSuper,
    SumSuper,
    SuperAggregateRegistry,
    default_superaggregate_registry,
)


class TestCountDistinct:
    def test_counts_groups(self):
        agg = CountDistinctSuper()
        agg.on_group_added("a", 1)
        agg.on_group_added("b", 1)
        assert agg.value() == 2
        agg.on_group_removed("a", 1)
        assert agg.value() == 1

    def test_negative_count_rejected(self):
        agg = CountDistinctSuper()
        with pytest.raises(ExecutionError, match="negative"):
            agg.on_group_removed("ghost", 1)


class TestKthSmallest:
    def test_inf_until_k_values(self):
        agg = KthSmallestSuper(3)
        agg.on_group_added("a", 10)
        agg.on_group_added("b", 20)
        assert agg.value() == float("inf")
        agg.on_group_added("c", 5)
        assert agg.value() == 20

    def test_tracks_kth_under_removal(self):
        agg = KthSmallestSuper(2)
        for key, value in (("a", 3), ("b", 1), ("c", 2)):
            agg.on_group_added(key, value)
        assert agg.value() == 2
        agg.on_group_removed("b", 1)
        assert agg.value() == 3

    def test_duplicate_values_allowed(self):
        agg = KthSmallestSuper(2)
        agg.on_group_added("a", 7)
        agg.on_group_added("b", 7)
        assert agg.value() == 7
        agg.on_group_removed("a", 7)
        assert agg.value() == float("inf")

    def test_removing_never_added_value_rejected(self):
        agg = KthSmallestSuper(1)
        agg.on_group_added("a", 1)
        with pytest.raises(ExecutionError, match="never added"):
            agg.on_group_removed("b", 99)

    def test_invalid_k(self):
        with pytest.raises(ExecutionError):
            KthSmallestSuper(0)


class TestSumSuper:
    def test_per_tuple_accumulation(self):
        agg = SumSuper()
        agg.on_tuple("g1", 10)
        agg.on_tuple("g1", 5)
        agg.on_tuple("g2", 1)
        assert agg.value() == 16

    def test_group_removal_subtracts_contribution(self):
        agg = SumSuper()
        agg.on_tuple("g1", 10)
        agg.on_tuple("g2", 7)
        agg.on_group_removed("g1", None)
        assert agg.value() == 7

    def test_removing_unknown_group_is_noop(self):
        agg = SumSuper()
        agg.on_tuple("g1", 3)
        agg.on_group_removed("ghost", None)
        assert agg.value() == 3


class TestCountSuper:
    def test_counts_and_retracts(self):
        agg = CountSuper()
        for _ in range(3):
            agg.on_tuple("g1", None)
        agg.on_tuple("g2", None)
        assert agg.value() == 4
        agg.on_group_removed("g1", None)
        assert agg.value() == 1


class TestMaxSuper:
    def test_max_under_removal(self):
        agg = MaxSuper()
        agg.on_group_added("a", 5)
        agg.on_group_added("b", 9)
        assert agg.value() == 9
        agg.on_group_removed("b", 9)
        assert agg.value() == 5

    def test_empty_is_none(self):
        assert MaxSuper().value() is None


class TestRegistry:
    def test_default_contents(self):
        registry = default_superaggregate_registry()
        for name in ("count_distinct", "Kth_smallest_value", "sum", "count", "max"):
            assert name in registry
            assert f"{name}$" in registry  # dollar-suffixed lookups work

    def test_create_kth_smallest_with_const(self):
        registry = default_superaggregate_registry()
        agg = registry.create("Kth_smallest_value", (5,))
        assert isinstance(agg, KthSmallestSuper) and agg.k == 5

    def test_kth_smallest_requires_one_const(self):
        registry = default_superaggregate_registry()
        with pytest.raises(RegistryError):
            registry.create("Kth_smallest_value", ())

    def test_unknown_rejected(self):
        with pytest.raises(RegistryError):
            default_superaggregate_registry().create("median", ())

    def test_duplicate_rejected(self):
        registry = SuperAggregateRegistry()
        registry.register("x", lambda args: CountDistinctSuper())
        with pytest.raises(RegistryError):
            registry.register("x", lambda args: CountDistinctSuper())

    def test_register_strips_dollar(self):
        registry = SuperAggregateRegistry()
        registry.register("x$", lambda args: CountDistinctSuper())
        assert "x" in registry

    def test_copy_independent(self):
        registry = default_superaggregate_registry()
        clone = registry.copy()
        clone.register("extra", lambda args: CountDistinctSuper())
        assert "extra" not in registry


class TestMinSuper:
    def test_min_under_removal(self):
        from repro.core.superaggregates import MinSuper

        agg = MinSuper()
        agg.on_group_added("a", 5)
        agg.on_group_added("b", 2)
        assert agg.value() == 2
        agg.on_group_removed("b", 2)
        assert agg.value() == 5

    def test_empty_is_none(self):
        from repro.core.superaggregates import MinSuper

        assert MinSuper().value() is None

    def test_bad_removal_rejected(self):
        from repro.core.superaggregates import MinSuper
        from repro.errors import ExecutionError

        agg = MinSuper()
        with pytest.raises(ExecutionError):
            agg.on_group_removed("x", 1)


class TestAvgSuper:
    def test_avg_over_tuples(self):
        from repro.core.superaggregates import AvgSuper

        agg = AvgSuper()
        agg.on_tuple("g1", 10)
        agg.on_tuple("g1", 20)
        agg.on_tuple("g2", 30)
        assert agg.value() == 20

    def test_group_removal_retracts_contribution(self):
        from repro.core.superaggregates import AvgSuper

        agg = AvgSuper()
        agg.on_tuple("g1", 10)
        agg.on_tuple("g2", 100)
        agg.on_group_removed("g2", None)
        assert agg.value() == 10

    def test_empty_is_none(self):
        from repro.core.superaggregates import AvgSuper

        assert AvgSuper().value() is None


class TestNewRegistryEntries:
    def test_min_and_avg_registered(self):
        registry = default_superaggregate_registry()
        assert "min" in registry and "avg" in registry
        registry.create("min", ())
        registry.create("avg", ())
