"""The sampling operator: §5 semantics, §6.4 evaluation order."""

import pytest

from repro.dsms.operators import build_operator
from repro.dsms.parser.planner import compile_query
from repro.dsms.stateful import StatefulLibrary, StatefulState
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA


def packet(time=0, uts=0, src=1, dst=2, length=100, sport=1024, dport=80, proto=6):
    return Record(TCP_SCHEMA, (time, uts, src, dst, length, sport, dport, proto))


def trace(*specs):
    """specs: (time, src, length) triples with auto-increment uts."""
    return [
        packet(time=t, uts=i + 1, src=s, length=l)
        for i, (t, s, l) in enumerate(specs)
    ]


def build(text, registries, library=None):
    if library is not None:
        registries.stateful = registries.stateful.merge(library)
    plan = compile_query(text, registries)
    assert plan.kind == "sampling", plan.kind
    return build_operator(plan)


def threshold_library(threshold=3):
    """Cleaning keeps only groups with count(*) above a live threshold the
    trigger sets; exposes deterministic hooks for semantics tests."""
    library = StatefulLibrary()

    @library.state("t_state")
    class TState(StatefulState):
        def __init__(self, carried=0):
            self.tuples = 0
            self.cleanings = 0
            self.carried = carried
            self.finalized = False

        @classmethod
        def initial(cls, old):
            return cls(carried=old.tuples if old is not None else 0)

        def on_window_final(self):
            self.finalized = True

    @library.sfun("tick", state="t_state")
    def tick(state, every):
        state.tuples += 1
        return state.tuples % every == 0

    @library.sfun("cleanings", state="t_state")
    def cleanings(state):
        state.cleanings += 1
        return state.cleanings

    @library.sfun("carried", state="t_state")
    def carried(state):
        return state.carried

    return library


class TestWindows:
    QUERY = "SELECT tb, srcIP, count(*) FROM TCP GROUP BY time/10 as tb, srcIP SUPERGROUP tb, srcIP"

    def test_output_only_at_window_boundary(self, registries):
        op = build(self.QUERY, registries)
        assert op.process(packet(time=0)) == []
        assert op.process(packet(time=5)) == []
        outs = op.process(packet(time=10))
        assert len(outs) == 1 and outs[0][2] == 2

    def test_finish_flushes_trailing_window(self, registries):
        op = build(self.QUERY, registries)
        op.process(packet(time=0))
        outs = op.finish()
        assert len(outs) == 1
        assert op.finish() == []  # idempotent

    def test_window_stats_recorded(self, registries):
        op = build(self.QUERY, registries)
        for t in (0, 1, 2, 10):
            op.process(packet(time=t))
        op.finish()
        stats = op.window_stats
        assert [s.window for s in stats] == [(0,), (1,)]
        assert stats[0].tuples_seen == 3
        assert stats[0].output_tuples == 1

    def test_run_generator(self, registries):
        op = build(self.QUERY, registries)
        outs = list(op.run(trace((0, 1, 10), (10, 1, 10), (20, 1, 10))))
        assert len(outs) == 3


class TestWhere:
    def test_where_discards(self, registries):
        op = build(
            "SELECT tb, count(*) FROM TCP WHERE len > 100"
            " GROUP BY time/10 as tb SUPERGROUP tb",
            registries,
        )
        op.process(packet(length=50))
        op.process(packet(length=200))
        outs = op.finish()
        assert outs[0][1] == 1
        assert op.window_stats[0].tuples_admitted == 1
        assert op.window_stats[0].tuples_seen == 2

    def test_where_sfun_controls_admission(self, registries):
        op = build(
            "SELECT tb, count(*) FROM TCP WHERE tick(2) = TRUE"
            " GROUP BY time/10 as tb",
            registries,
            threshold_library(),
        )
        for i in range(10):
            op.process(packet(uts=i))
        outs = op.finish()
        assert outs[0][1] == 5  # every second tuple admitted


class TestCleaning:
    def test_cleaning_by_false_evicts(self, registries):
        # §5: during a cleaning phase a group is removed when CLEANING BY
        # is FALSE.  This test pins the resolution of the paper's §6.6 typo.
        op = build(
            "SELECT tb, srcIP, count(*) FROM TCP"
            " GROUP BY time/10 as tb, srcIP"
            " CLEANING WHEN tick(6) = TRUE"
            " CLEANING BY count(*) >= 2",
            registries,
            threshold_library(),
        )
        # Five tuples for src 1, one for src 2; the 6th tuple triggers
        # cleaning; src 2's count(*)=1 fails the predicate and is evicted.
        for stream_tuple in trace(
            (0, 1, 10), (0, 1, 10), (0, 1, 10), (0, 1, 10), (0, 1, 10), (0, 2, 10)
        ):
            op.process(stream_tuple)
        outs = op.finish()
        assert [(o["srcIP"], o[2]) for o in outs] == [(1, 5)]
        assert op.window_stats[0].groups_evicted == 1
        assert op.window_stats[0].cleaning_phases == 1

    def test_no_cleaning_without_trigger(self, registries):
        op = build(
            "SELECT tb, srcIP, count(*) FROM TCP"
            " GROUP BY time/10 as tb, srcIP"
            " CLEANING WHEN tick(100) = TRUE"
            " CLEANING BY count(*) >= 2",
            registries,
            threshold_library(),
        )
        for stream_tuple in trace((0, 1, 10), (0, 2, 10)):
            op.process(stream_tuple)
        outs = op.finish()
        assert len(outs) == 2
        assert op.window_stats[0].cleaning_phases == 0

    def test_evicted_group_can_reenter(self, registries):
        op = build(
            "SELECT tb, srcIP, count(*) FROM TCP"
            " GROUP BY time/10 as tb, srcIP"
            " CLEANING WHEN tick(3) = TRUE"
            " CLEANING BY count(*) >= 2",
            registries,
            threshold_library(),
        )
        # src 2 evicted at tuple 3, then reappears: fresh aggregates.
        for stream_tuple in trace((0, 1, 1), (0, 1, 1), (0, 2, 1), (0, 2, 1)):
            op.process(stream_tuple)
        outs = op.finish()
        counts = {o["srcIP"]: o[2] for o in outs}
        assert counts[2] == 1  # restarted after eviction


class TestHaving:
    def test_having_filters_groups_at_close(self, registries):
        op = build(
            "SELECT tb, srcIP, count(*) FROM TCP"
            " GROUP BY time/10 as tb, srcIP SUPERGROUP tb"
            " HAVING count(*) > 1",
            registries,
        )
        for stream_tuple in trace((0, 1, 1), (0, 1, 1), (0, 2, 1)):
            op.process(stream_tuple)
        outs = op.finish()
        assert [(o["srcIP"]) for o in outs] == [1]

    def test_having_eviction_updates_superaggregates(self, registries):
        # count_distinct$ must shrink as HAVING evicts groups, so stateful
        # final-cleaning predicates see live counts (paper §6.5).
        seen = []
        library = StatefulLibrary()

        @library.state("probe_state")
        class ProbeState(StatefulState):
            pass

        @library.sfun("probe", state="probe_state")
        def probe(state, live):
            seen.append(live)
            # Evict while three or more groups are live: the first group
            # visited is dropped, after which the live count must read 2.
            return live < 3

        op = build(
            "SELECT tb, srcIP FROM TCP"
            " GROUP BY time/10 as tb, srcIP SUPERGROUP tb"
            " HAVING probe(count_distinct$(*)) = TRUE",
            registries,
            library,
        )
        for stream_tuple in trace((0, 1, 1), (0, 2, 1), (0, 3, 1)):
            op.process(stream_tuple)
        outs = op.finish()
        assert seen == [3, 2, 2]
        assert [o["srcIP"] for o in outs] == [2, 3]


class TestSuperGroups:
    def test_states_isolated_per_supergroup(self, registries):
        op = build(
            "SELECT tb, srcIP, count(*) FROM TCP WHERE tick(2) = TRUE"
            " GROUP BY time/10 as tb, srcIP SUPERGROUP tb, srcIP",
            registries,
            threshold_library(),
        )
        # Each srcIP has its own t_state: each admits every 2nd tuple.
        for stream_tuple in trace(
            (0, 1, 1), (0, 1, 1), (0, 2, 1), (0, 2, 1)
        ):
            op.process(stream_tuple)
        outs = op.finish()
        assert {(o["srcIP"], o[2]) for o in outs} == {(1, 1), (2, 1)}

    def test_state_carryover_between_windows(self, registries):
        op = build(
            "SELECT tb, srcIP, carried() FROM TCP WHERE tick(1) = TRUE"
            " GROUP BY time/10 as tb, srcIP SUPERGROUP tb, srcIP",
            registries,
            threshold_library(),
        )
        # Window 0: three tuples for src 1 -> state.tuples == 3.
        for stream_tuple in trace((0, 1, 1), (1, 1, 1), (2, 1, 1)):
            op.process(stream_tuple)
        # Window 1: the new supergroup state carries old.tuples.
        outs = op.process(packet(time=10, uts=99, src=1))
        assert outs  # window 0 flushed
        final = op.finish()
        assert final[0][2] == 3  # carried() == old window's tuple count

    def test_no_carryover_for_new_supergroup_key(self, registries):
        op = build(
            "SELECT tb, srcIP, carried() FROM TCP WHERE tick(1) = TRUE"
            " GROUP BY time/10 as tb, srcIP SUPERGROUP tb, srcIP",
            registries,
            threshold_library(),
        )
        op.process(packet(time=0, uts=1, src=1))
        op.process(packet(time=10, uts=2, src=2))  # different supergroup key
        final = op.finish()
        assert final[0][2] == 0


class TestKmvAdmission:
    QUERY = (
        "SELECT tb, srcIP, HX FROM TCP"
        " WHERE HX <= Kth_smallest_value$(HX, 3)"
        " GROUP BY time/10 as tb, srcIP, H(destIP) as HX"
        " SUPERGROUP tb, srcIP"
        " HAVING HX <= Kth_smallest_value$(HX, 3)"
        " CLEANING WHEN count_distinct$(*) >= 3"
        " CLEANING BY HX <= Kth_smallest_value$(HX, 3)"
    )

    def test_keeps_k_smallest_hashes(self, registries):
        from repro.dsms.functions import hash32

        op = build(self.QUERY, registries)
        destinations = list(range(40))
        for i, dst in enumerate(destinations):
            op.process(packet(time=0, uts=i, src=1, dst=dst))
        outs = op.finish()
        got = sorted(o["HX"] for o in outs)
        expected = sorted(hash32(d) for d in destinations)[:3]
        assert got == expected

    def test_per_supergroup_sketches(self, registries):
        op = build(self.QUERY, registries)
        for i in range(30):
            op.process(packet(time=0, uts=i, src=i % 2, dst=i))
        outs = op.finish()
        by_src = {}
        for o in outs:
            by_src.setdefault(o["srcIP"], []).append(o["HX"])
        assert set(by_src) == {0, 1}
        assert all(len(v) == 3 for v in by_src.values())


class TestOutputEvaluation:
    def test_select_sfun_evaluated_at_output_time(self, registries):
        # cleanings() increments per call; SELECT-clause stateful functions
        # run last, once per surviving group (paper §6.4).
        op = build(
            "SELECT tb, srcIP, cleanings() FROM TCP"
            " GROUP BY time/10 as tb, srcIP SUPERGROUP tb",
            registries,
            threshold_library(),
        )
        for stream_tuple in trace((0, 1, 1), (0, 2, 1)):
            op.process(stream_tuple)
        outs = op.finish()
        assert sorted(o[2] for o in outs) == [1, 2]

    def test_output_schema_and_ordering(self, registries):
        op = build(
            "SELECT tb, srcIP, count(*) FROM TCP GROUP BY time/10 as tb, srcIP"
            " SUPERGROUP tb",
            registries,
        )
        from repro.streams.schema import Ordering

        assert op.output_schema.attribute("tb").ordering is Ordering.INCREASING


class TestLateTuples:
    QUERY = (
        "SELECT tb, srcIP, count(*) FROM TCP"
        " GROUP BY time/10 as tb, srcIP SUPERGROUP tb"
    )

    def test_late_tuple_dropped_and_counted(self, registries):
        op = build(self.QUERY, registries)
        op.process(packet(time=0))
        op.process(packet(time=10))   # closes window 0
        op.process(packet(time=3))    # late: window 0 already emitted
        op.process(packet(time=11))
        outs = op.finish()
        # The late tuple contributed to no group.
        assert sum(o[2] for o in outs) == 2
        stats = {s.window[0]: s for s in op.window_stats}
        assert stats[1].late_tuples == 1
        assert stats[1].tuples_seen == 2

    def test_late_tuples_do_not_reopen_windows(self, registries):
        op = build(self.QUERY, registries)
        op.process(packet(time=25))
        for late_time in (3, 7, 14):
            op.process(packet(time=late_time))
        op.finish()
        assert [s.window for s in op.window_stats] == [(2,)]
        assert op.window_stats[0].late_tuples == 3

    def test_in_order_streams_have_no_late_tuples(self, registries):
        op = build(self.QUERY, registries)
        for t in (0, 5, 10, 15, 20):
            op.process(packet(time=t))
        op.finish()
        assert all(s.late_tuples == 0 for s in op.window_stats)


class TestIncomparableWindows:
    """A tuple whose window id cannot be ordered against the current
    window (e.g. a None timestamp from a corrupt capture) must be counted
    and dropped — not treated as a window boundary, which would evict
    every live group and SFUN state mid-window."""

    QUERY = (
        "SELECT tb, srcIP, count(*) FROM TCP"
        " GROUP BY time as tb, srcIP SUPERGROUP tb"
    )

    def test_incomparable_tuple_dropped_and_counted(self, registries):
        op = build(self.QUERY, registries)
        op.process(packet(time=7))
        op.process(packet(time=7))
        assert op.process(packet(time=None)) == []
        outs = op.finish()
        # The in-flight window survived with both tuples.
        assert len(outs) == 1 and outs[0][2] == 2
        assert op.window_stats[0].incomparable_tuples == 1
        assert op.window_stats[0].tuples_seen == 2

    def test_incomparable_tuples_do_not_open_windows(self, registries):
        op = build(self.QUERY, registries)
        op.process(packet(time=7))
        for _ in range(3):
            op.process(packet(time=None))
        op.process(packet(time=8))
        op.finish()
        assert [s.window for s in op.window_stats] == [(7,), (8,)]
        assert op.window_stats[0].incomparable_tuples == 3
