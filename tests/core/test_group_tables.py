"""The group / supergroup / supergroup-group tables."""

from repro.core.group_tables import GroupEntry, GroupTables, SuperGroupEntry


def group(key, sg_key=("sg",)):
    return GroupEntry(key=key, aggregates=[], supergroup_key=sg_key)


class TestGroups:
    def test_add_and_lookup(self):
        tables = GroupTables()
        tables.add_group(group(("a",)))
        assert ("a",) in tables.groups
        assert tables.group_count == 1

    def test_groups_of_preserves_insertion_order(self):
        tables = GroupTables()
        for key in ("x", "y", "z"):
            tables.add_group(group((key,)))
        assert tables.groups_of(("sg",)) == [("x",), ("y",), ("z",)]

    def test_remove_group_updates_both_tables(self):
        tables = GroupTables()
        tables.add_group(group(("a",)))
        tables.add_group(group(("b",)))
        removed = tables.remove_group(("a",))
        assert removed is not None and removed.key == ("a",)
        assert tables.groups_of(("sg",)) == [("b",)]

    def test_remove_missing_group_returns_none(self):
        assert GroupTables().remove_group(("ghost",)) is None

    def test_groups_of_unknown_supergroup_is_empty(self):
        assert GroupTables().groups_of(("nope",)) == []

    def test_separate_supergroups(self):
        tables = GroupTables()
        tables.add_group(group(("a",), sg_key=("s1",)))
        tables.add_group(group(("b",), sg_key=("s2",)))
        assert tables.groups_of(("s1",)) == [("a",)]
        assert tables.groups_of(("s2",)) == [("b",)]


class TestWindowSwap:
    def test_end_window_moves_new_to_old(self):
        tables = GroupTables()
        entry = SuperGroupEntry(key=("k",), states={}, superaggregates=[])
        tables.new_supergroups[("k",)] = entry
        tables.add_group(group(("a",), sg_key=("k",)))
        tables.end_window()
        assert tables.group_count == 0
        assert tables.supergroup_count == 0
        assert tables.old_supergroups[("k",)] is entry
        assert tables.groups_of(("k",)) == []

    def test_second_end_window_discards_old(self):
        tables = GroupTables()
        entry = SuperGroupEntry(key=("k",), states={}, superaggregates=[])
        tables.new_supergroups[("k",)] = entry
        tables.end_window()
        tables.end_window()
        assert tables.old_supergroups == {}
