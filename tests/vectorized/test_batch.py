"""RecordBatch unit tests: lazy conversion, edges, dtype fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA
from repro.dsms.vectorized import RecordBatch, concat_batches

from tests.vectorized.conftest import VAL_SCHEMA, make_val_records


def _packets(n):
    # TCP(time, uts, srcIP, destIP, len, srcPort, destPort, protocol)
    return [
        Record(TCP_SCHEMA, [i, i * 7, 10 + i, 20 + i, 100 + i, 80, 443, 6])
        for i in range(n)
    ]


def test_lazy_conversion_only_touched_columns():
    batch = RecordBatch.from_records(TCP_SCHEMA, _packets(4))
    batch.column("len")
    assert set(batch._columns) == {"len"}
    batch.column("time")
    assert set(batch._columns) == {"len", "time"}


def test_column_dtypes():
    rows = [(0, 1, 1.5, True), (1, 2, 2.5, False)]
    batch = RecordBatch.from_records(VAL_SCHEMA, make_val_records(rows))
    assert batch.column("t").dtype == np.int64
    assert batch.column("f").dtype == np.float64
    assert batch.column("b").dtype == np.bool_


def test_uint_columns_use_signed_storage():
    # uint maps to int64 so ``time - 60`` can go negative without wrap.
    batch = RecordBatch.from_records(TCP_SCHEMA, _packets(2))
    assert batch.column("uts").dtype == np.int64


def test_object_fallback_on_heterogeneous_values():
    records = make_val_records([(0, 1, 1.0, True)])
    bad = Record(VAL_SCHEMA, [1, "not-an-int", 2.0, False])
    batch = RecordBatch.from_records(VAL_SCHEMA, records + [bad])
    col = batch.column("x")
    assert col.dtype == object
    assert col.tolist() == [1, "not-an-int"]


def test_object_fallback_on_int64_overflow():
    big = 2**80
    records = [Record(VAL_SCHEMA, [0, big, 0.0, True])]
    batch = RecordBatch.from_records(VAL_SCHEMA, records)
    col = batch.column("x")
    assert col.dtype == object
    assert col[0] == big and type(col[0]) is int


def test_to_records_passthrough_returns_original_list():
    records = _packets(3)
    batch = RecordBatch.from_records(TCP_SCHEMA, records)
    batch.column("len")  # converting a column must not break passthrough
    assert batch.to_records() is records


def test_to_records_from_columns_yields_python_scalars():
    batch = RecordBatch.from_records(TCP_SCHEMA, _packets(3))
    rebuilt = RecordBatch(
        TCP_SCHEMA, columns=dict(batch.materialized()), length=3
    ).to_records()
    for record in rebuilt:
        assert all(type(v) is int for v in record.values)
    assert [r.values for r in rebuilt] == [r.values for r in _packets(3)]


def test_take_filters_records_and_columns():
    batch = RecordBatch.from_records(TCP_SCHEMA, _packets(5))
    batch.column("len")
    mask = np.asarray([True, False, True, False, True])
    taken = batch.take(mask)
    assert len(taken) == 3
    assert taken.column("len").tolist() == [100, 102, 104]
    # Lazy columns still convert from the filtered backing.
    assert taken.column("time").tolist() == [0, 2, 4]


def test_slice_window():
    batch = RecordBatch.from_records(TCP_SCHEMA, _packets(6))
    part = batch.slice(2, 5)
    assert len(part) == 3
    assert part.column("time").tolist() == [2, 3, 4]


def test_empty_batch():
    batch = RecordBatch.empty(TCP_SCHEMA)
    assert len(batch) == 0
    assert batch.to_records() == []


def test_missing_column_without_backing_raises():
    batch = RecordBatch(TCP_SCHEMA, columns={}, length=0)
    with pytest.raises(SchemaError):
        batch.column("len")


def test_concat_batches():
    a = RecordBatch.from_records(TCP_SCHEMA, _packets(2))
    b = RecordBatch.from_records(TCP_SCHEMA, _packets(3))
    empty = RecordBatch.empty(TCP_SCHEMA)
    merged = concat_batches(TCP_SCHEMA, [a, empty, b])
    assert len(merged) == 5
    assert merged.column("time").tolist() == [0, 1, 0, 1, 2]
    # Single non-empty input passes through untouched.
    assert concat_batches(TCP_SCHEMA, [empty, a]) is a
