"""Property-style engine-equivalence tests.

Hypothesis generates adversarial value streams — NaN and infinite
floats, negative ints, degenerate single-row and all-filtered inputs —
and asserts the tuple and vectorized engines agree byte-for-byte on
rows, value types, metric series, and cost accounts (``run_both``
asserts all four).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.vectorized.conftest import make_val_records, run_both

#: Floats include NaN and ±inf: the fold layer must drop to sequential
#: updates for them rather than trusting numpy reductions.
_floats = st.floats(width=64)
_ints = st.integers(min_value=-(2**40), max_value=2**40)


@st.composite
def val_rows(draw, min_size=0, max_size=40):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    times = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=99), min_size=n, max_size=n
            )
        )
    )
    rows = []
    for t in times:
        rows.append((t, draw(_ints), draw(_floats), draw(st.booleans())))
    return rows


@settings(max_examples=40, deadline=None)
@given(val_rows())
def test_selection_equivalence(rows):
    run_both(
        "SELECT t, x, f, b FROM VAL WHERE x % 3 = 0 AND b = TRUE",
        make_val_records(rows),
    )


@settings(max_examples=40, deadline=None)
@given(val_rows())
def test_selection_arithmetic_equivalence(rows):
    run_both(
        "SELECT t, x + x, x * 2 - 1, t / 7 FROM VAL WHERE NOT x < 0",
        make_val_records(rows),
    )


@settings(max_examples=30, deadline=None)
@given(val_rows())
def test_aggregation_equivalence(rows):
    run_both(
        "SELECT tb, sum(x), count(*), min(x), max(x), first(x), last(x)"
        " FROM VAL GROUP BY t/10 AS tb",
        make_val_records(rows),
    )


@settings(max_examples=30, deadline=None)
@given(val_rows())
def test_float_aggregation_equivalence(rows):
    """Float sums use the sequential fold: addition order (and NaN/inf
    propagation) must match the tuple path exactly."""
    run_both(
        "SELECT tb, sum(f), min(f), max(f), avg(f) FROM VAL GROUP BY t/10 AS tb",
        make_val_records(rows),
    )


@settings(max_examples=30, deadline=None)
@given(val_rows())
def test_having_and_distinct_equivalence(rows):
    run_both(
        "SELECT tb, count_distinct(x), sum(b) FROM VAL"
        " GROUP BY t/10 AS tb HAVING count(*) > 1",
        make_val_records(rows),
    )


@settings(max_examples=20, deadline=None)
@given(val_rows(min_size=1, max_size=3))
def test_tiny_streams_equivalence(rows):
    """Single-record and near-empty streams: window open/close edges."""
    run_both(
        "SELECT tb, sum(x), avg(x) FROM VAL GROUP BY t/10 AS tb",
        make_val_records(rows),
    )
