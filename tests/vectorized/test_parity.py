"""Engine-equivalence parity tests.

Every shipped example query (and a battery of targeted shapes) must
produce byte-identical rows, metric series, and cost accounts on the
tuple and vectorized engines; plans the batch compiler cannot express
must fall back cleanly — same results, tuple execution — rather than
erroring or silently diverging.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.cli import _standard_instance
from repro.dsms.cost import CostModel
from repro.errors import ExecutionError

from tests.vectorized.conftest import metric_state, run_both, make_val_records

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples" / "queries"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.gsql"))


def _run_example(sql: str, trace, vectorize: bool):
    gs = _standard_instance(relax_factor=10.0, vectorize=vectorize)
    handle = gs.add_query(sql, name="q")
    gs.run(iter(trace))
    return gs, handle


def test_example_inventory():
    assert [path.name for path in EXAMPLES] == sorted(
        path.name for path in EXAMPLES
    )
    assert any(path.name == "big_flows.gsql" for path in EXAMPLES)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_queries_byte_identical(path, packet_trace):
    sql = path.read_text()
    gs_t, h_t = _run_example(sql, packet_trace, vectorize=False)
    gs_v, h_v = _run_example(sql, packet_trace, vectorize=True)
    rows_t = [tuple(r.values) for r in h_t.results]
    rows_v = [tuple(r.values) for r in h_v.results]
    assert rows_t == rows_v
    assert [tuple(type(v) for v in row) for row in rows_t] == [
        tuple(type(v) for v in row) for row in rows_v
    ]
    assert metric_state(gs_t) == metric_state(gs_v)


def test_selection_vectorizes(packet_trace):
    sql = (EXAMPLES_DIR / "big_flows.gsql").read_text()
    gs = _standard_instance(relax_factor=10.0, vectorize=True)
    handle = gs.add_query(sql, name="q")
    assert handle.operator.execution_mode == "vectorized"
    assert handle.operator.vectorize_fallback is None


def test_plain_aggregation_vectorizes(packet_trace):
    gs = _standard_instance(relax_factor=10.0, vectorize=True)
    handle = gs.add_query(
        "SELECT tb, sum(len), count(*) FROM TCP GROUP BY time/20 AS tb",
        name="q",
    )
    assert handle.operator.execution_mode == "vectorized"


def test_sfun_plan_falls_back_cleanly(packet_trace):
    """SFUN-bearing sampling plans run on the tuple path under
    vectorize=True with identical results."""
    sql = (EXAMPLES_DIR / "subset_sum.gsql").read_text()
    gs = _standard_instance(relax_factor=10.0, vectorize=True)
    handle = gs.add_query(sql, name="q")
    assert getattr(handle.operator, "execution_mode", "tuple") == "tuple"
    gs.run(iter(packet_trace))
    gs_t = _standard_instance(relax_factor=10.0, vectorize=False)
    h_t = gs_t.add_query(sql, name="q")
    gs_t.run(iter(packet_trace))
    assert [tuple(r.values) for r in handle.results] == [
        tuple(r.values) for r in h_t.results
    ]


def test_custom_aggregate_forces_fallback():
    """An aggregate with no batched fold takes the whole operator back to
    the tuple path, and the reason is recorded on the operator."""
    from repro.dsms.aggregates import Aggregate

    class Median(Aggregate):
        def __init__(self):
            self._values = []

        def update(self, value):
            self._values.append(value)

        def value(self):
            ordered = sorted(self._values)
            return ordered[len(ordered) // 2] if ordered else None

    gs = _standard_instance(relax_factor=10.0, vectorize=True)
    gs.registries.aggregates.register("median", Median)
    handle = gs.add_query(
        "SELECT tb, median(len) FROM TCP GROUP BY time/20 AS tb", name="q"
    )
    assert handle.operator.execution_mode == "tuple"
    assert "no batched fold" in handle.operator.vectorize_fallback


def test_nondeterministic_scalar_forces_fallback():
    gs = _standard_instance(relax_factor=10.0, vectorize=True)
    gs.registries.scalars.register("wobble", lambda x: x, deterministic=False)
    handle = gs.add_query("SELECT time FROM TCP WHERE wobble(len) > 0", name="q")
    assert handle.operator.execution_mode == "tuple"
    assert "nondeterministic" in handle.operator.vectorize_fallback


def test_scalar_functions_match(packet_trace):
    """H() runs through frompyfunc with object-boxed args: hash values
    (which overflow int64 intermediates when computed on numpy ints)
    must equal the tuple path's Python-int arithmetic."""
    run_both(
        "SELECT time, H(srcIP, 7) FROM TCP WHERE H(srcIP, 7) % 3 = 0",
        packet_trace,
        schema=packet_trace[0].schema,
    )


def test_having_and_full_aggregate_battery(packet_trace):
    run_both(
        "SELECT tb, srcIP, sum(len), count(*), avg(len), min(len), max(len),"
        " first(len), last(len), count_distinct(destIP)"
        " FROM TCP WHERE len > 100"
        " GROUP BY time/10 AS tb, srcIP HAVING count(*) > 2",
        packet_trace,
        schema=packet_trace[0].schema,
    )


def test_group_by_expression_shadowing(packet_trace):
    """Group-by aliases shadow stream columns in WHERE, as on the tuple
    path (_AggTupleContext semantics)."""
    run_both(
        "SELECT tb, count(*) FROM TCP WHERE tb % 2 = 0 GROUP BY time/5 AS tb",
        packet_trace,
        schema=packet_trace[0].schema,
    )


# -- targeted value-domain parity -------------------------------------------


def test_nan_values_in_aggregates():
    nan = float("nan")
    rows = [
        (0, 1, 1.5, True),
        (0, 2, nan, False),
        (0, 3, 2.5, True),
        (11, 4, nan, False),
        (11, 5, 0.5, True),
    ]
    out, _ = run_both(
        "SELECT tb, min(f), max(f), count_distinct(f) FROM VAL"
        " GROUP BY t/10 AS tb",
        make_val_records(rows),
    )
    assert len(out) == 2
    # Python's comparison chain keeps the first value it saw, so the
    # first window's min is the non-NaN 1.5 while the second window's
    # min *is* NaN (it arrived first there) — on both engines.
    assert out[0][1] == 1.5
    assert math.isnan(out[1][1])


def test_nan_group_keys():
    # Distinct NaN objects: each is its own dict key on both paths
    # (degenerate, but equal).  A *shared* NaN object would collapse on
    # the tuple path only — dict keys compare by identity first, which
    # no value-based engine can reproduce; DESIGN.md §11 documents that
    # divergence and Record.from_mapping rejects NaN keys outright.
    rows = [
        (0, 1, float("nan"), True),
        (0, 2, float("nan"), False),
        (0, 3, 1.0, True),
    ]
    out, _ = run_both(
        "SELECT tb, f, count(*) FROM VAL GROUP BY t/10 AS tb, f",
        make_val_records(rows),
    )
    assert len(out) == 3


def test_bool_columns_everywhere():
    rows = [(0, 1, 1.0, True), (0, 2, 2.0, False), (1, 3, 3.0, True)]
    run_both(
        "SELECT t, b, x FROM VAL WHERE b = TRUE",
        make_val_records(rows),
    )
    run_both(
        "SELECT tb, sum(b), min(b), max(b) FROM VAL GROUP BY t/10 AS tb",
        make_val_records(rows),
    )


def test_bool_arithmetic_promotes_like_python():
    rows = [(0, 1, 1.0, True), (0, 2, 2.0, False)]
    run_both(
        "SELECT t, b + b, -b, b / 2.0 FROM VAL",
        make_val_records(rows),
    )


def test_empty_stream():
    run_both("SELECT t, x FROM VAL WHERE x > 0", [])


def test_single_record_stream():
    run_both(
        "SELECT tb, sum(x), avg(x) FROM VAL GROUP BY t/10 AS tb",
        make_val_records([(3, 7, 1.0, True)]),
    )


def test_where_rejects_everything():
    rows = [(0, 1, 1.0, True), (1, 2, 2.0, False)]
    run_both("SELECT t, x FROM VAL WHERE x > 100", make_val_records(rows))
    run_both(
        "SELECT tb, sum(x) FROM VAL WHERE x > 100 GROUP BY t/10 AS tb",
        make_val_records(rows),
    )


def test_integer_division_buckets():
    rows = [(i, i * 3, float(i), i % 2 == 0) for i in range(25)]
    run_both(
        "SELECT tb, sum(x) FROM VAL GROUP BY t/7 AS tb",
        make_val_records(rows),
    )


def test_division_by_zero_raises_same_error():
    from tests.vectorized.conftest import run_engine

    rows = make_val_records([(0, 1, 1.0, True)])
    errors = []
    for vectorize in (False, True):
        with pytest.raises(ExecutionError) as exc_info:
            run_engine("SELECT t, x / 0 FROM VAL", rows, vectorize=vectorize)
        errors.append(str(exc_info.value))
    assert "integer division by zero" in errors[0]
    assert errors[0] == errors[1]


def test_mixed_type_comparison_raises_same_error():
    from tests.vectorized.conftest import run_engine

    schema_rows = make_val_records([(0, 1, 1.0, True)])
    errors = []
    for vectorize in (False, True):
        with pytest.raises(ExecutionError) as exc_info:
            run_engine(
                "SELECT t FROM VAL WHERE x < 'zzz'", schema_rows, vectorize=vectorize
            )
        errors.append(str(exc_info.value))
    assert errors[0] == errors[1]


def test_checkpoints_interchangeable_between_engines(packet_trace):
    """A vectorized aggregation checkpoint restores onto a tuple operator
    and vice versa: the group-table format is shared."""
    from repro.dsms.parser import compile_query
    from repro.dsms.operators.factory import build_operator
    from repro.dsms.vectorized import RecordBatch

    gs = _standard_instance(relax_factor=10.0)
    sql = "SELECT tb, srcIP, sum(len) FROM TCP GROUP BY time/20 AS tb, srcIP"
    plan = compile_query(sql, gs.registries, query_name="q")
    vec = build_operator(plan, vectorize=True)
    tup = build_operator(plan, vectorize=False)
    half = len(packet_trace) // 2
    emitted = vec.process_batch(
        RecordBatch.from_records(packet_trace[0].schema, packet_trace[:half])
    )
    tup.restore(vec.checkpoint())
    out_t = list(emitted.to_records())
    for record in packet_trace[half:]:
        out_t.extend(tup.process(record))
    out_t.extend(tup.flush())

    ref = build_operator(plan, vectorize=False)
    out_ref = []
    for record in packet_trace:
        out_ref.extend(ref.process(record))
    out_ref.extend(ref.flush())
    assert [tuple(r.values) for r in out_t] == [tuple(r.values) for r in out_ref]


def test_fallbacks_surface_in_run_report(packet_trace):
    """Fallback reasons reach run_report()/metrics; the section is
    strictly conditional so plain report consumers never see it."""
    gs = _standard_instance(relax_factor=10.0, vectorize=True)
    gs.registries.scalars.register("wobble", lambda x: x, deterministic=False)
    gs.add_query(
        "SELECT time, len FROM TCP WHERE len > 200", name="fast",
        keep_results=False,
    )
    gs.add_query(
        "SELECT time FROM TCP WHERE wobble(len) > 0", name="slow",
        keep_results=False,
    )
    gs.run(iter(packet_trace))
    report = gs.run_report()
    assert "vectorize" in report
    fallbacks = report["vectorize"]["fallbacks"]
    assert set(fallbacks) == {"slow"}
    assert fallbacks["slow"]
    assert int(gs.metrics.value("vectorize_fallback_total", query="slow")) == 1

    # Fully vectorized run: no section at all (the {streams, queries}
    # shape pin in tests/obs/test_report_compat.py stays intact).
    gs = _standard_instance(relax_factor=10.0, vectorize=True)
    gs.add_query("SELECT time, len FROM TCP WHERE len > 200", name="fast",
                 keep_results=False)
    gs.run(iter(packet_trace))
    assert set(gs.run_report()) == {"streams", "queries"}
