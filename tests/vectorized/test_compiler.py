"""Batch-compiler unit tests: exact tuple semantics over arrays.

These drive compiled closures directly (no runtime) against the
reference ``repro.dsms.expr.evaluate`` semantics, including the error
paths that motivated this engine's satellite bugfixes: int/int floor
division, bool/float true division, zero divisors, and mixed-type
diagnostics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.dsms.expr import evaluate, EvalContext
from repro.dsms.functions import default_function_registry
from repro.dsms.parser import parse_query
from repro.dsms.parser.analyzer import analyze
from repro.dsms.vectorized import BatchCompiler, Env, UnsupportedExpression, make_env
from repro.dsms.vectorized import RecordBatch

from tests.vectorized.conftest import VAL_SCHEMA, make_val_records

from repro.dsms.aggregates import default_aggregate_registry
from repro.dsms.parser import Registries
from repro.dsms.stateful import StatefulLibrary
from repro.core.superaggregates import default_superaggregate_registry


def _registries():
    return Registries(
        schemas={"VAL": VAL_SCHEMA},
        scalars=default_function_registry(),
        aggregates=default_aggregate_registry(),
        superaggregates=default_superaggregate_registry(),
        stateful=StatefulLibrary(),
    )


class _RowCtx(EvalContext):
    def __init__(self, record, scalars):
        self.record = record
        self.scalars = scalars

    def column(self, name):
        return self.record[name]

    def call_scalar(self, name, args):
        return self.scalars.call(name, args)


def _compile_select(sql):
    """First SELECT item of ``sql`` compiled, plus its analyzed tree."""
    registries = _registries()
    analyzed = analyze(parse_query(sql), registries)
    compiler = BatchCompiler(registries.scalars)
    return [compiler.compile(item.expr) for item in analyzed.ast.select], analyzed


def _eval_both(sql, rows):
    """Each compiled SELECT item vs evaluate() row-by-row."""
    registries = _registries()
    analyzed = analyze(parse_query(sql), registries)
    compiler = BatchCompiler(registries.scalars)
    fns = [compiler.compile(item.expr) for item in analyzed.ast.select]
    records = make_val_records(rows)
    batch = RecordBatch.from_records(VAL_SCHEMA, records)
    env = make_env(batch)
    for item, fn in zip(analyzed.ast.select, fns):
        batched = fn(env)
        if isinstance(batched, np.ndarray):
            batched = batched.tolist()
        else:
            batched = [batched] * len(records)
        reference = [
            evaluate(item.expr, _RowCtx(r, registries.scalars)) for r in records
        ]
        assert batched == reference
        assert [type(v) for v in batched] == [type(v) for v in reference]


ROWS = [(0, 7, 1.5, True), (10, -3, 2.0, False), (20, 8, 0.25, True)]


def test_arithmetic_matches_tuple_path():
    _eval_both("SELECT x + 1, x - t, x * 2, x % 3 FROM VAL", ROWS)


def test_integer_division_floors():
    _eval_both("SELECT x / 2, t / 7 FROM VAL", ROWS)


def test_float_division_is_true_division():
    _eval_both("SELECT f / 2, x / 0.5 FROM VAL", ROWS)


def test_bool_arithmetic_is_python_int_arithmetic():
    _eval_both("SELECT b + b, -b, b * 3 FROM VAL", ROWS)


def test_comparisons_and_logic():
    _eval_both(
        "SELECT x < 5, x >= 7, f <= 1.5, x = 7, x <> 7, NOT b = TRUE FROM VAL",
        ROWS,
    )


def test_scalar_calls_receive_python_ints():
    # H() multiplies by 32-bit constants; on int64 inputs that overflows
    # (or wraps) — the boxing in _compile_scalar_call must hand the
    # registered Python function plain ints.
    _eval_both("SELECT H(x, 3), HU(t, 1) FROM VAL", ROWS)


def test_integer_division_by_zero_message_and_span():
    fns, analyzed = _compile_select("SELECT x / 0 FROM VAL")
    batch = RecordBatch.from_records(VAL_SCHEMA, make_val_records(ROWS))
    with pytest.raises(ExecutionError) as exc_info:
        fns[0](make_env(batch))
    assert "integer division by zero" in str(exc_info.value)
    assert exc_info.value.span is not None


def test_true_division_by_zero_message():
    fns, _ = _compile_select("SELECT f / 0 FROM VAL")
    batch = RecordBatch.from_records(VAL_SCHEMA, make_val_records(ROWS))
    with pytest.raises(ExecutionError, match="division by zero"):
        fns[0](make_env(batch))


def test_modulo_by_zero_raises_execution_error():
    fns, _ = _compile_select("SELECT x % 0 FROM VAL")
    batch = RecordBatch.from_records(VAL_SCHEMA, make_val_records(ROWS))
    with pytest.raises(ExecutionError, match="modulo by zero"):
        fns[0](make_env(batch))


def test_mixed_type_order_comparison_names_python_types():
    fns, _ = _compile_select("SELECT x < 'zzz' FROM VAL")
    batch = RecordBatch.from_records(VAL_SCHEMA, make_val_records(ROWS))
    with pytest.raises(ExecutionError, match=r"int and str"):
        fns[0](make_env(batch))


def test_equality_never_type_errors():
    _eval_both("SELECT x = 'zzz', x <> 'zzz' FROM VAL", ROWS)


def test_unsupported_nodes_raise_at_compile_time():
    registries = _registries()
    registries.scalars.register("jitter", lambda x: x, deterministic=False)
    analyzed = analyze(parse_query("SELECT jitter(x) FROM VAL"), registries)
    compiler = BatchCompiler(registries.scalars)
    with pytest.raises(UnsupportedExpression, match="nondeterministic"):
        compiler.compile(analyzed.ast.select[0].expr)


def test_aggregate_outside_group_context_is_unsupported():
    registries = _registries()
    analyzed = analyze(
        parse_query("SELECT tb, sum(x) FROM VAL GROUP BY t/10 AS tb"), registries
    )
    compiler = BatchCompiler(registries.scalars)
    agg_item = analyzed.ast.select[1].expr
    with pytest.raises(UnsupportedExpression):
        compiler.compile(agg_item, allow_aggregates=False)
    # ... but compiles in a group env.
    fn = compiler.compile(agg_item, allow_aggregates=True)
    env = Env(lambda name: None, 2, lambda op, n: None,
              aggregate=lambda slot: np.asarray([5, 6]))
    assert fn(env).tolist() == [5, 6]
