"""Shared helpers for vectorized-engine tests.

The central claim of the batch engine is *engine equivalence*: for any
query, running with ``vectorize=True`` produces byte-identical rows,
identical metric series, and identical cost-account balances.  The
``run_both`` helper drives one query through both engines end to end
(ring buffers, runtime batching, operator, sinks) and returns everything
a test needs to assert that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import pytest

from repro.dsms.cost import CostModel
from repro.dsms.runtime import Gigascope
from repro.streams.records import Record
from repro.streams.schema import Attribute, Ordering, StreamSchema
from repro.streams.traces import TraceConfig, research_center_feed


#: A small schema covering every dtype family the batch engine maps:
#: ordered int (window source), plain int, float (NaN carrier), bool.
VAL_SCHEMA = StreamSchema(
    "VAL",
    [
        Attribute("t", "int", Ordering.INCREASING),
        Attribute("x", "int"),
        Attribute("f", "float"),
        Attribute("b", "bool"),
    ],
)


def make_val_records(rows) -> List[Record]:
    return [Record(VAL_SCHEMA, list(row)) for row in rows]


def metric_state(gs: Gigascope) -> Dict[Tuple[Any, ...], Any]:
    """Every metric series keyed by (name, labels) -> internal state."""
    out: Dict[Tuple[Any, ...], Any] = {}
    for series in gs.metrics.series():
        if series.name == "vectorize_fallback_total":
            # The one engine-asymmetric series by design: it exists only
            # on a vectorize=True run that fell back, precisely to make
            # the asymmetry visible (run_report()'s ``vectorize`` section).
            continue
        labels = series.labels
        if isinstance(labels, dict):
            labels = tuple(sorted(labels.items()))
        out[(series.name, labels)] = series._state()
    return out


def run_engine(sql: str, records, schema=None, vectorize: bool = False, setup=None):
    gs = Gigascope(vectorize=vectorize, cost_model=CostModel())
    gs.register_stream(schema if schema is not None else VAL_SCHEMA)
    if setup is not None:
        setup(gs)
    handle = gs.add_query(sql, name="q")
    gs.run(iter(records))
    return gs, handle


def _comparable(value: Any) -> Any:
    """NaN-aware comparison key (NaN != NaN, but both engines emitting
    NaN in the same cell counts as agreement)."""
    if isinstance(value, float) and value != value:
        return "<NaN>"
    return value


def run_both(sql: str, records, schema=None, setup=None):
    """Run ``sql`` on both engines; assert full equivalence; return rows."""
    gs_t, h_t = run_engine(sql, records, schema, vectorize=False, setup=setup)
    gs_v, h_v = run_engine(sql, records, schema, vectorize=True, setup=setup)
    rows_t = [tuple(r.values) for r in h_t.results]
    rows_v = [tuple(r.values) for r in h_v.results]
    assert [tuple(_comparable(v) for v in row) for row in rows_t] == [
        tuple(_comparable(v) for v in row) for row in rows_v
    ]
    types_t = [tuple(type(v) for v in row) for row in rows_t]
    types_v = [tuple(type(v) for v in row) for row in rows_v]
    assert types_t == types_v, "engines agree on values but not value types"
    assert metric_state(gs_t) == metric_state(gs_v)
    assert gs_t.cost.accounts() == gs_v.cost.accounts()
    return rows_t, h_v


@pytest.fixture(scope="session")
def packet_trace():
    """A deterministic research-center feed shared across parity tests."""
    config = TraceConfig(duration_seconds=45, rate_scale=0.01, seed=20050614)
    return list(research_center_feed(config))
