"""Record construction and access."""

import pytest

from repro.errors import SchemaError
from repro.streams.records import Record
from repro.streams.schema import Attribute, StreamSchema

SCHEMA = StreamSchema("S", [Attribute("a"), Attribute("b"), Attribute("name", "str")])


def make(a=1, b=2, name="x"):
    return Record(SCHEMA, (a, b, name))


class TestConstruction:
    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError, match="needs 3 values"):
            Record(SCHEMA, (1, 2))

    def test_from_mapping_defaults(self):
        rec = Record.from_mapping(SCHEMA, {"a": 7})
        assert rec["a"] == 7
        assert rec["b"] == 0
        assert rec["name"] == ""

    def test_from_mapping_none_in_key_column_rejected(self):
        from repro.streams.schema import Ordering

        ordered = StreamSchema(
            "O",
            [Attribute("t", "uint", Ordering.INCREASING), Attribute("v")],
        )
        with pytest.raises(SchemaError, match="None"):
            Record.from_mapping(ordered, {"t": None, "v": 1})
        # Unordered columns may hold None — only window-id columns are keys.
        rec = Record.from_mapping(ordered, {"t": 1, "v": None})
        assert rec["v"] is None

    def test_from_mapping_nan_in_key_column_rejected(self):
        from repro.streams.schema import Ordering

        ordered = StreamSchema(
            "O",
            [Attribute("t", "float", Ordering.INCREASING), Attribute("v")],
        )
        with pytest.raises(SchemaError, match="NaN"):
            Record.from_mapping(ordered, {"t": float("nan"), "v": 1})

    def test_from_mapping_unknown_key_rejected(self):
        with pytest.raises(SchemaError, match="unknown attributes"):
            Record.from_mapping(SCHEMA, {"zzz": 1})

    def test_from_mapping_missing_default_names_attribute_and_tag(self):
        # A type tag outside the defaults table (a future type, or a
        # schema built around attribute validation) must raise a
        # SchemaError naming the attribute and tag — not a bare KeyError.
        schema = StreamSchema("S2", [Attribute("a"), Attribute("blob")])
        object.__setattr__(schema.attributes[1], "type_tag", "bytes")
        with pytest.raises(SchemaError, match="'blob'.*'bytes'.*no default"):
            Record.from_mapping(schema, {"a": 1})
        # Supplying the value explicitly still works: only the *default*
        # is undefined for the tag.
        rec = Record.from_mapping(schema, {"a": 1, "blob": b"x"})
        assert rec["blob"] == b"x"


class TestAccess:
    def test_by_name(self):
        assert make()["a"] == 1

    def test_by_index(self):
        assert make()[1] == 2

    def test_by_attribute(self):
        assert make().name == "x"

    def test_missing_attribute_raises_attributeerror(self):
        with pytest.raises(AttributeError):
            make().missing

    def test_get_with_default(self):
        assert make().get("missing", 42) == 42
        assert make().get("a") == 1

    def test_as_dict(self):
        assert make().as_dict() == {"a": 1, "b": 2, "name": "x"}

    def test_iteration_and_len(self):
        assert list(make()) == [1, 2, "x"]
        assert len(make()) == 3


class TestReplaceEquality:
    def test_replace_returns_new_record(self):
        original = make()
        updated = original.replace(b=99)
        assert updated["b"] == 99
        assert original["b"] == 2

    def test_replace_unknown_rejected(self):
        with pytest.raises(SchemaError):
            make().replace(zzz=1)

    def test_equality(self):
        assert make() == make()
        assert make() != make(a=5)

    def test_hashable(self):
        assert make() in {make()}

    def test_not_equal_to_other_types(self):
        assert make() != (1, 2, "x")

    def test_repr_shows_fields(self):
        assert "a=1" in repr(make())
