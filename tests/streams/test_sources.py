"""Hardened ingest edge: ResilientSource, quarantine, trace tailing.

The contracts under test (docs/RESILIENCE.md, "Ingest hardening"):

* a transient read failure reconnects and resumes at the exact record
  position — the delivered stream is identical to an unfaulted read;
* the retry budget is finite: persistent failure surfaces as a typed
  :class:`SourceError` carrying the attempt count, never a hang;
* a stalled source trips the read-timeout watchdog and reconnects;
* malformed records are diverted to the bounded dead-letter quarantine
  (with reasons) instead of raising mid-stream;
* a torn trace tail (truncated mid-record) yields every whole record
  and quarantines the partial one.
"""

import math

import pytest

from repro.errors import SourceError, StreamError
from repro.streams.persistence import save_trace
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA
from repro.streams.sources import (
    EAGER_RETRY,
    QuarantineStream,
    ResilientSource,
    RetryPolicy,
    TraceTailSource,
    replayable,
    resilient_trace_source,
)
from repro.streams.traces import TraceConfig, research_center_feed
from repro.testing.faults import FaultySource, SourceFault


def records(seconds=5, seed=3):
    config = TraceConfig(duration_seconds=seconds, rate_scale=0.01, seed=seed)
    return list(research_center_feed(config))


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5, jitter=0.0)

        class _NoJitter:
            def random(self):
                return 0.0

        rng = _NoJitter()
        delays = [policy.delay(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_never_shrinks_the_delay(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=1.0, jitter=0.5)

        class _FullJitter:
            def random(self):
                return 1.0

        assert policy.delay(1, _FullJitter()) == pytest.approx(0.15)


class TestQuarantineStream:
    def test_bounded_with_eviction_accounting(self):
        q = QuarantineStream(capacity=3)
        for i in range(5):
            q.put("bad", {"i": i}, source="t", index=i)
        assert len(q) == 3
        assert q.total == 5
        assert q.evicted == 2
        assert [e.payload["i"] for e in q.entries] == [2, 3, 4]
        assert q.counts_by_reason() == {"bad": 5}

    def test_jsonl_export_round_trips_reasons(self, tmp_path):
        q = QuarantineStream()
        q.put("torn tail", b"\x00\x01", source="trace", index=7)
        path = tmp_path / "q.jsonl"
        assert q.write_jsonl(str(path)) == 1
        import json

        entry = json.loads(path.read_text().strip())
        assert entry["reason"] == "torn tail"
        assert entry["index"] == 7
        assert entry["payload"] == {"hex": "0001"}


class TestResilientSource:
    def test_clean_source_passes_through_untouched(self):
        recs = records()
        src = ResilientSource(replayable(recs), EAGER_RETRY, name="clean")
        assert list(src) == recs
        assert src.stats.reconnects == 0
        assert src.stats.records == len(recs)

    def test_transient_failure_reconnects_at_exact_position(self):
        recs = records()
        faulty = FaultySource(recs, [SourceFault("fail", 10)])
        src = ResilientSource(faulty, EAGER_RETRY, name="flaky")
        assert list(src) == recs
        assert src.stats.reconnects == 1
        assert src.stats.read_errors == 1

    def test_retry_budget_exhaustion_raises_typed_error(self):
        def always_broken(skip):
            raise IOError("disk on fire")
            yield  # pragma: no cover

        src = ResilientSource(
            always_broken,
            RetryPolicy(max_retries=3, backoff_base=0.0, backoff_cap=0.0, jitter=0.0),
            name="dead",
        )
        with pytest.raises(SourceError) as excinfo:
            list(src)
        assert excinfo.value.attempts == 3

    def test_stalled_source_trips_watchdog_and_recovers(self):
        recs = records()
        faulty = FaultySource(recs, [SourceFault("stall", 4, seconds=1.0)])
        policy = RetryPolicy(
            max_retries=3,
            backoff_base=0.0,
            backoff_cap=0.0,
            jitter=0.0,
            read_timeout=0.2,
        )
        src = ResilientSource(faulty, policy, name="slow")
        assert list(src) == recs
        assert src.stats.stalls >= 1

    def test_corrupt_record_is_quarantined_not_raised(self):
        recs = records()
        faulty = FaultySource(recs, [SourceFault("corrupt", 3)])
        q = QuarantineStream()
        src = ResilientSource(
            faulty, EAGER_RETRY, schema=recs[0].schema, quarantine=q, name="fz"
        )
        out = list(src)
        assert len(out) == len(recs) - 1
        assert q.total == 1
        assert "non-finite" in q.entries[0].reason
        assert src.stats.quarantined == 1

    def test_validation_without_quarantine_is_refused(self):
        with pytest.raises(StreamError):
            ResilientSource(replayable([]), EAGER_RETRY, schema=TCP_SCHEMA)

    def test_stream_damage_is_deterministic(self):
        recs = records()
        faults = [
            SourceFault("drop", 2),
            SourceFault("duplicate", 5),
            SourceFault("reorder", 8),
        ]
        first = list(FaultySource(recs, faults)(0))
        second = list(FaultySource(recs, faults)(0))
        assert first == second
        assert len(first) == len(recs)  # drop -1, duplicate +1
        assert recs[1] not in first


class TestTraceTailSource:
    def test_torn_tail_yields_whole_records_and_quarantines_partial(
        self, tmp_path
    ):
        recs = records()
        path = tmp_path / "trace.bin"
        save_trace(iter(recs), str(path))
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 5)
        q = QuarantineStream()
        out = list(TraceTailSource(str(path), quarantine=q))
        assert out == recs[:-1]
        assert q.total == 1
        assert "torn tail" in q.entries[0].reason

    def test_skip_seeks_past_delivered_records(self, tmp_path):
        recs = records()
        path = tmp_path / "trace.bin"
        save_trace(iter(recs), str(path))
        out = list(TraceTailSource(str(path), skip=10))
        assert out == recs[10:]

    def test_resilient_trace_source_round_trips(self, tmp_path):
        recs = records()
        path = tmp_path / "trace.bin"
        save_trace(iter(recs), str(path))
        q = QuarantineStream()
        src = resilient_trace_source(str(path), EAGER_RETRY, quarantine=q)
        assert list(src) == recs
        assert q.total == 0

    def test_resilient_validation_quarantines_nan(self, tmp_path):
        recs = records()
        path = tmp_path / "trace.bin"
        save_trace(iter(recs), str(path))
        q = QuarantineStream()
        src = resilient_trace_source(
            str(path), EAGER_RETRY, quarantine=q, validate=True
        )
        out = list(src)
        assert out == recs  # persisted records are already well-formed
        assert q.total == 0

    def test_nan_rejected_by_schema_coercion(self):
        q = QuarantineStream()
        bad = Record(
            TCP_SCHEMA,
            tuple(
                math.nan if name == "time" else value
                for name, value in zip(TCP_SCHEMA.names, records()[0].values)
            ),
        )
        src = ResilientSource(
            replayable([bad]),
            EAGER_RETRY,
            schema=TCP_SCHEMA,
            quarantine=q,
            name="nan",
        )
        assert list(src) == []
        assert q.total == 1
