"""Random-process building blocks of the trace generators."""

import random

import pytest

from repro.errors import StreamError
from repro.streams.generators import (
    AddressSpace,
    BurstyRateProcess,
    FlowModel,
    PacketLengthModel,
    SteadyRateProcess,
)


class TestSteadyRate:
    def test_stays_within_jitter(self):
        process = SteadyRateProcess(mean_rate=100_000, jitter=0.03)
        rng = random.Random(1)
        rates = [process.rate_at(s, rng) for s in range(200)]
        assert all(97_000 <= r <= 103_000 for r in rates)

    def test_low_variability(self):
        process = SteadyRateProcess(mean_rate=100_000, jitter=0.03)
        rng = random.Random(2)
        rates = [process.rate_at(s, rng) for s in range(500)]
        spread = (max(rates) - min(rates)) / 100_000
        assert spread < 0.07

    def test_invalid_config(self):
        with pytest.raises(StreamError):
            SteadyRateProcess(mean_rate=0)
        with pytest.raises(StreamError):
            SteadyRateProcess(mean_rate=10, jitter=1.5)


class TestBurstyRate:
    def test_rates_within_bounds(self):
        process = BurstyRateProcess(low_rate=5_000, high_rate=15_000)
        rng = random.Random(3)
        rates = [process.rate_at(s, rng) for s in range(1000)]
        # within-regime noise of 15% around bounded regimes
        assert min(rates) >= 5_000 * 0.8
        assert max(rates) <= 15_000 * 1.2

    def test_produces_genuine_regime_jumps(self):
        process = BurstyRateProcess(low_rate=5_000, high_rate=15_000,
                                    mean_regime_seconds=10.0)
        rng = random.Random(4)
        rates = [process.rate_at(s, rng) for s in range(600)]
        jumps = sum(
            1
            for a, b in zip(rates, rates[1:])
            if b < 0.7 * a or b > 1.4 * a
        )
        assert jumps >= 5, "the bursty feed must actually burst"

    def test_invalid_config(self):
        with pytest.raises(StreamError):
            BurstyRateProcess(low_rate=0)
        with pytest.raises(StreamError):
            BurstyRateProcess(low_rate=10, high_rate=5)
        with pytest.raises(StreamError):
            BurstyRateProcess(mean_regime_seconds=0)


class TestPacketLengthModel:
    def test_draws_within_bands(self):
        model = PacketLengthModel()
        rng = random.Random(5)
        lengths = [model.draw(rng) for _ in range(5000)]
        assert all(40 <= l <= 1500 for l in lengths)

    def test_trimodal_mix(self):
        model = PacketLengthModel()
        rng = random.Random(6)
        lengths = [model.draw(rng) for _ in range(10_000)]
        small = sum(1 for l in lengths if l <= 80) / len(lengths)
        large = sum(1 for l in lengths if l >= 1300) / len(lengths)
        assert abs(small - 0.5) < 0.05
        assert abs(large - 0.3) < 0.05

    def test_mean_length(self):
        model = PacketLengthModel()
        rng = random.Random(7)
        lengths = [model.draw(rng) for _ in range(20_000)]
        empirical = sum(lengths) / len(lengths)
        assert abs(empirical - model.mean_length) / model.mean_length < 0.05

    def test_weights_must_sum_to_one(self):
        with pytest.raises(StreamError):
            PacketLengthModel(weights=(0.5, 0.5, 0.5))

    def test_bands_validated(self):
        with pytest.raises(StreamError):
            PacketLengthModel(small=(0, 10))


class TestAddressSpace:
    def test_addresses_live_in_prefix(self):
        space = AddressSpace(size=100, base_prefix=0x0A000000)
        rng = random.Random(8)
        for _ in range(200):
            addr = space.pick(rng)
            assert addr >> 24 == 0x0A

    def test_zipf_skew(self):
        space = AddressSpace(size=1000, alpha=1.1)
        rng = random.Random(9)
        counts = {}
        for _ in range(20_000):
            addr = space.pick(rng)
            counts[addr] = counts.get(addr, 0) + 1
        top = max(counts.values())
        # rank-0 address should dominate a uniform draw by a wide margin
        assert top > 5 * (20_000 / 1000)

    def test_address_of_deterministic(self):
        space = AddressSpace(size=10)
        assert space.address_of(3) == space.address_of(3)

    def test_address_of_out_of_range(self):
        space = AddressSpace(size=10)
        with pytest.raises(StreamError):
            space.address_of(10)

    def test_distinct_ranks_distinct_addresses(self):
        space = AddressSpace(size=500)
        addresses = {space.address_of(rank) for rank in range(500)}
        assert len(addresses) == 500

    def test_invalid_config(self):
        with pytest.raises(StreamError):
            AddressSpace(size=0)
        with pytest.raises(StreamError):
            AddressSpace(alpha=-1)


class TestFlowModel:
    def test_mostly_continues_existing_flows(self):
        model = FlowModel(continue_probability=0.8)
        rng = random.Random(10)
        keys = [model.next_flow_key(rng) for _ in range(5000)]
        distinct = len(set(keys))
        assert distinct < len(keys) * 0.5

    def test_reset_clears_live_flows(self):
        model = FlowModel()
        rng = random.Random(11)
        for _ in range(100):
            model.next_flow_key(rng)
        model.reset()
        assert model._live == []

    def test_five_tuple_shape(self):
        model = FlowModel()
        rng = random.Random(12)
        src, dst, sport, dport, proto = model.next_flow_key(rng)
        assert 0 <= src < 2**32 and 0 <= dst < 2**32
        assert 1024 <= sport <= 65535
        assert proto in (6, 17)

    def test_invalid_config(self):
        with pytest.raises(StreamError):
            FlowModel(continue_probability=1.5)
        with pytest.raises(StreamError):
            FlowModel(max_live_flows=0)
