"""Trace persistence: save / load / iter round trips.

Corruption is surfaced as :class:`TraceCorruptError` carrying the byte
offset (and, past the header, the record index) of the damage, so the
resilient tail source can resync on the fixed-width framing.
"""

import io

import pytest

from repro.errors import StreamError, TraceCorruptError
from repro.streams.persistence import (
    iter_trace,
    load_trace,
    read_header,
    save_trace,
)
from repro.streams.records import Record
from repro.streams.schema import Attribute, Ordering, StreamSchema
from repro.streams.traces import TraceConfig, research_center_feed


@pytest.fixture
def small_feed():
    config = TraceConfig(duration_seconds=5, rate_scale=0.005, seed=8)
    return list(research_center_feed(config))


class TestRoundTrip:
    def test_in_memory(self, small_feed):
        buffer = io.BytesIO()
        count = save_trace(small_feed, buffer)
        assert count == len(small_feed)
        buffer.seek(0)
        assert load_trace(buffer) == small_feed

    def test_on_disk(self, small_feed, tmp_path):
        path = str(tmp_path / "trace.bin")
        save_trace(small_feed, path)
        assert load_trace(path) == small_feed

    def test_iter_trace_streams(self, small_feed, tmp_path):
        path = str(tmp_path / "trace.bin")
        save_trace(small_feed, path)
        assert list(iter_trace(path)) == small_feed

    def test_schema_reconstructed(self, small_feed):
        buffer = io.BytesIO()
        save_trace(small_feed, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        schema = loaded[0].schema
        assert schema.name == "TCP"
        assert schema.attribute("time").ordering is Ordering.INCREASING
        assert schema.attribute("uts").ordering is Ordering.NONE

    def test_float_attributes(self):
        schema = StreamSchema("F", [Attribute("t", "int"), Attribute("x", "float")])
        records = [Record(schema, (i, i * 0.5)) for i in range(10)]
        buffer = io.BytesIO()
        save_trace(records, buffer)
        buffer.seek(0)
        assert load_trace(buffer) == records

    def test_loaded_trace_runs_through_dsms(self, small_feed, tmp_path, gigascope):
        path = str(tmp_path / "trace.bin")
        save_trace(small_feed, path)
        # The loaded schema is equal to (but not identical with) TCP_SCHEMA;
        # run via a fresh instance registered with the loaded schema.
        from repro.dsms.runtime import Gigascope

        loaded = load_trace(path)
        gs = Gigascope()
        gs.register_stream(loaded[0].schema)
        handle = gs.add_query("SELECT len FROM TCP WHERE len > 1000")
        gs.run(iter(loaded))
        expected = sum(1 for r in small_feed if r["len"] > 1000)
        assert len(handle.results) == expected


class TestErrors:
    def test_empty_trace_rejected(self):
        with pytest.raises(StreamError, match="empty"):
            save_trace([], io.BytesIO())

    def test_mixed_schemas_rejected(self, small_feed):
        other_schema = StreamSchema("X", [Attribute("a")])
        mixed = [small_feed[0], Record(other_schema, (1,))]
        with pytest.raises(StreamError, match="one schema"):
            save_trace(mixed, io.BytesIO())

    def test_string_attributes_rejected(self):
        schema = StreamSchema("S", [Attribute("name", "str")])
        with pytest.raises(StreamError, match="non-numeric"):
            save_trace([Record(schema, ("x",))], io.BytesIO())

    def test_bad_magic_rejected(self):
        with pytest.raises(StreamError, match="magic"):
            load_trace(io.BytesIO(b"NOTATRACEFILE___" * 4))

    def test_truncated_header_rejected(self):
        with pytest.raises(StreamError, match="truncated"):
            load_trace(io.BytesIO(b"RP"))

    def test_truncated_record_rejected(self, small_feed):
        buffer = io.BytesIO()
        save_trace(small_feed, buffer)
        data = buffer.getvalue()[:-3]  # chop mid-record
        with pytest.raises(StreamError, match="partial record"):
            load_trace(io.BytesIO(data))


class TestCorruptionDiagnostics:
    """The typed error pinpoints the damage for framing resync."""

    def test_bad_magic_is_a_trace_corrupt_error_at_offset_zero(self):
        with pytest.raises(TraceCorruptError) as excinfo:
            load_trace(io.BytesIO(b"NOTATRACEFILE___" * 4))
        assert excinfo.value.offset == 0
        assert "offset 0" in str(excinfo.value)

    def test_partial_record_reports_offset_and_index(self, small_feed):
        buffer = io.BytesIO()
        save_trace(small_feed, buffer)
        data = buffer.getvalue()[:-3]
        with pytest.raises(TraceCorruptError) as excinfo:
            load_trace(io.BytesIO(data))
        err = excinfo.value
        assert err.record_index == len(small_feed) - 1
        # The reported offset is exactly where the torn record starts,
        # computable from the header geometry — that is what lets the
        # tail source seek straight to it.
        fh = io.BytesIO(data)
        schema, body_offset = read_header(fh)
        row_size = 8 * len(schema.attributes)
        assert err.offset == body_offset + err.record_index * row_size
        assert f"record index {err.record_index}" in str(err)

    def test_trace_corrupt_error_is_a_stream_error(self):
        assert issubclass(TraceCorruptError, StreamError)
