"""Schema and attribute behaviour."""

import pytest

from repro.errors import SchemaError
from repro.streams.schema import (
    Attribute,
    Ordering,
    PKT_SCHEMA,
    StreamSchema,
    TCP_SCHEMA,
)


class TestAttribute:
    def test_defaults(self):
        attr = Attribute("len")
        assert attr.type_tag == "int"
        assert attr.ordering is Ordering.NONE

    def test_ordered_attribute(self):
        attr = Attribute("time", "uint", Ordering.INCREASING)
        assert attr.ordering.is_ordered

    def test_unordered_is_not_ordered(self):
        assert not Ordering.NONE.is_ordered

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("not a name")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", "varchar")


class TestStreamSchema:
    def test_lookup_by_name(self):
        assert PKT_SCHEMA.attribute("time").ordering is Ordering.INCREASING
        assert PKT_SCHEMA.attribute("len").ordering is Ordering.NONE

    def test_contains(self):
        assert "srcIP" in PKT_SCHEMA
        assert "nope" not in PKT_SCHEMA

    def test_index_of(self):
        assert PKT_SCHEMA.index_of("time") == 0
        assert PKT_SCHEMA.index_of(PKT_SCHEMA.names[-1]) == len(PKT_SCHEMA) - 1

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError, match="no attribute"):
            PKT_SCHEMA.attribute("missing")

    def test_ordered_attributes(self):
        ordered = PKT_SCHEMA.ordered_attributes()
        assert [a.name for a in ordered] == ["time"]

    def test_tcp_uts_is_not_ordered(self):
        # Paper §6.1: uts has "its timestamp-ness cast away" so grouping on
        # it must not create per-packet windows.
        assert not TCP_SCHEMA.attribute("uts").ordering.is_ordered

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            StreamSchema("S", [Attribute("a"), Attribute("a")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema("S", [])

    def test_invalid_schema_name_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema("bad name", [Attribute("a")])

    def test_equality_and_hash(self):
        a = StreamSchema("S", [Attribute("x"), Attribute("y")])
        b = StreamSchema("S", [Attribute("x"), Attribute("y")])
        c = StreamSchema("S", [Attribute("x")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_ordering(self):
        assert "time increasing" in repr(PKT_SCHEMA)

    def test_iteration_order(self):
        assert [a.name for a in PKT_SCHEMA] == list(PKT_SCHEMA.names)
