"""The two synthetic feeds and the DDoS scenario."""

import pytest

from repro.errors import StreamError
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import (
    TraceConfig,
    data_center_feed,
    ddos_feed,
    replay,
    research_center_feed,
)


def small(duration=30, scale=0.005, seed=42):
    return TraceConfig(duration_seconds=duration, rate_scale=scale, seed=seed)


class TestTraceConfig:
    def test_validation(self):
        with pytest.raises(StreamError):
            TraceConfig(duration_seconds=0)
        with pytest.raises(StreamError):
            TraceConfig(rate_scale=0)


class TestResearchCenterFeed:
    def test_deterministic_for_seed(self):
        a = list(research_center_feed(small()))
        b = list(research_center_feed(small()))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(research_center_feed(small(seed=1)))
        b = list(research_center_feed(small(seed=2)))
        assert a != b

    def test_time_monotone_nondecreasing(self):
        trace = list(research_center_feed(small()))
        times = [r["time"] for r in trace]
        assert times == sorted(times)

    def test_uts_strictly_increasing(self):
        trace = list(research_center_feed(small()))
        uts = [r["uts"] for r in trace]
        assert all(a < b for a, b in zip(uts, uts[1:]))

    def test_schema_is_tcp(self):
        record = next(research_center_feed(small()))
        assert record.schema is TCP_SCHEMA

    def test_rate_bounds_scaled(self):
        config = small(duration=120, scale=0.01)
        trace = list(research_center_feed(config))
        per_second = {}
        for record in trace:
            per_second[record["time"]] = per_second.get(record["time"], 0) + 1
        # 5k-15k pps scaled by 0.01, with 15% within-regime noise
        assert min(per_second.values()) >= 5_000 * 0.01 * 0.8
        assert max(per_second.values()) <= 15_000 * 0.01 * 1.25

    def test_covers_every_second(self):
        config = small(duration=25)
        trace = list(research_center_feed(config))
        assert {r["time"] for r in trace} == set(range(25))


class TestDataCenterFeed:
    def test_steady_rate(self):
        config = TraceConfig(duration_seconds=30, rate_scale=0.01, seed=5)
        trace = list(data_center_feed(config))
        per_second = {}
        for record in trace:
            per_second[record["time"]] = per_second.get(record["time"], 0) + 1
        rates = list(per_second.values())
        assert max(rates) - min(rates) <= 0.1 * 1000

    def test_lower_variability_than_research_feed(self):
        config = TraceConfig(duration_seconds=60, rate_scale=0.01, seed=5)
        def variability(trace):
            per_second = {}
            for record in trace:
                per_second[record["time"]] = per_second.get(record["time"], 0) + 1
            rates = sorted(per_second.values())
            return rates[-1] / rates[0]
        steady = variability(data_center_feed(config))
        bursty = variability(research_center_feed(config))
        assert steady < bursty


class TestDdosFeed:
    def test_attack_multiplies_rate(self):
        config = TraceConfig(duration_seconds=90, rate_scale=0.01, seed=3)
        trace = list(ddos_feed(config, attack_start=30, attack_duration=30))
        per_second = {}
        for record in trace:
            per_second[record["time"]] = per_second.get(record["time"], 0) + 1
        before = sum(per_second[s] for s in range(0, 30)) / 30
        during = sum(per_second[s] for s in range(30, 60)) / 30
        assert during > 4 * before

    def test_attack_creates_many_tiny_flows(self):
        config = TraceConfig(duration_seconds=90, rate_scale=0.01, seed=3)
        trace = list(ddos_feed(config, attack_start=30, attack_duration=30))
        def distinct_sources(seconds):
            return len({r["srcIP"] for r in trace if r["time"] in seconds})
        assert distinct_sources(range(30, 60)) > 5 * distinct_sources(range(0, 30))

    def test_invalid_attack_window(self):
        with pytest.raises(StreamError):
            list(ddos_feed(small(), attack_start=-1))


class TestReplay:
    def test_replay_list_is_iterable_twice(self):
        trace = list(research_center_feed(small(duration=5)))
        assert list(replay(trace)) == trace
        assert list(replay(trace)) == trace

    def test_replay_generator_materialises(self):
        gen = research_center_feed(small(duration=5))
        replayed = list(replay(gen))
        assert replayed == list(research_center_feed(small(duration=5)))
