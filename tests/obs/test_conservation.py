"""Conservation identities over the metrics registry.

Every tuple a stream offers must be accounted for exactly once at every
layer (docs/OBSERVABILITY.md lists the identities):

* stream:    records == ingested + shed + quarantined + quota_shed
* selection: in == filtered + rows_out
* sampling:  in == filtered + admitted + late + incomparable
* groups:    created == rows_out + evicted + having_rejected

These are checked for every shipped example query, for a shedding run,
for a run with malformed records quarantined at admission, for
serial-vs-sharded agreement on partition-invariant totals, and for
a supervised run with an injected shard kill (the counters must come
out byte-identical to an unfaulted supervised run).
"""

import glob
import os

import pytest

from repro.cli import _standard_instance
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope, canonical_rows
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.testing.faults import Fault, FaultPlan
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "queries"
)
# The unsound_* files are lint counterexamples (docs/LINT_RULES.md), not
# runtime examples; one is a low-level selection the high-level feeder
# identities below don't model.  tests/analysis/ pins their diagnostics.
EXAMPLES = sorted(
    path
    for path in glob.glob(os.path.join(EXAMPLES_DIR, "*.gsql"))
    if not os.path.basename(path).startswith("unsound_")
)

# Keyed supergroups make SFUN state shard-local (see tests/dsms/test_sharded).
SS_TEXT = SUBSET_SUM_QUERY.format(window=5, target=500).replace(
    "GROUP BY time/5 as tb, srcIP, destIP, uts",
    "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
)
BATCH = 128


def feed(seconds=20, seed=7):
    config = TraceConfig(duration_seconds=seconds, rate_scale=0.01, seed=seed)
    return research_center_feed(config)


def run_example(path, **instance_kwargs):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    gs = _standard_instance(relax_factor=1.0, **instance_kwargs)
    handle = gs.add_query(text, name="q")
    gs.run(feed())
    return gs, handle


def val(gs, name, **labels):
    # total() filters on the named labels and sums over the rest (here
    # the ``operator`` kind label), unlike exact-match value().
    return gs.metrics.total(name, **labels)


class TestExampleQueries:
    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[os.path.basename(p) for p in EXAMPLES]
    )
    def test_tuple_conservation(self, path):
        gs, handle = run_example(path)
        m = gs.metrics

        # Stream layer: everything offered is either ingested, shed, or
        # quarantined.
        records = m.total("stream_records_total")
        assert records > 0
        assert records == (
            m.total("stream_ingested_total")
            + m.total("stream_shed_total")
            + m.total("stream_quarantined_total")
        )

        if handle.level == "low":
            # Selection examples run at the low level directly: no
            # feeder, every ingested tuple reaches the operator and is
            # filtered or emitted.
            q_in = val(gs, "operator_tuples_in_total", query="q")
            assert q_in == m.total("stream_ingested_total")
            assert q_in == val(
                gs, "operator_tuples_filtered_total", query="q"
            ) + val(gs, "operator_rows_out_total", query="q")
            return

        # Low-level feeder (auto-inserted pass-through selection): every
        # ingested tuple goes in, and comes out or is filtered.
        feeder_in = val(gs, "operator_tuples_in_total", query="q__lowsel")
        assert feeder_in == m.total("stream_ingested_total")
        assert feeder_in == val(
            gs, "operator_tuples_filtered_total", query="q__lowsel"
        ) + val(gs, "operator_rows_out_total", query="q__lowsel")

        # Main operator: in == filtered + admitted + late + incomparable
        # (late/incomparable are zero for plain aggregation queries).
        q_in = val(gs, "operator_tuples_in_total", query="q")
        assert q_in == val(gs, "operator_rows_out_total", query="q__lowsel")
        assert q_in == (
            val(gs, "operator_tuples_filtered_total", query="q")
            + val(gs, "operator_tuples_admitted_total", query="q")
            + val(gs, "operator_late_tuples_total", query="q")
            + val(gs, "operator_incomparable_tuples_total", query="q")
        )

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[os.path.basename(p) for p in EXAMPLES]
    )
    def test_group_conservation(self, path):
        gs, handle = run_example(path)

        created = val(gs, "operator_groups_created_total", query="q")
        rows_out = val(gs, "operator_rows_out_total", query="q")
        if handle.level == "low":
            # Selection examples have no groups; rows_out is still the
            # ground-truth result count.
            assert created == 0
            assert rows_out == len(handle.results)
            return
        assert created > 0
        assert created == (
            rows_out
            + val(gs, "operator_groups_evicted_total", query="q")
            + val(gs, "operator_having_rejected_total", query="q")
        )
        # The rows_out counter is the ground-truth result count.
        assert rows_out == len(handle.results)
        assert val(gs, "query_forwarded_total", query="q__lowsel") > 0


class TestShedding:
    def test_offered_equals_ingested_plus_shed(self):
        gs = Gigascope(shed_threshold=8)
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.add_query(SS_TEXT, name="q")
        gs.run(feed(), batch_size=256)
        m = gs.metrics
        shed = m.total("stream_shed_total")
        assert shed > 0
        assert m.total("stream_records_total") == (
            m.total("stream_ingested_total")
            + shed
            + m.total("stream_quarantined_total")
        )


class TestQuotaShedding:
    def test_offered_equals_ingested_plus_quota_shed(self):
        """The serving edge's quota term closes the stream identity."""
        from repro.dsms.cost import CostModel
        from repro.serving.server import StandingQueryEngine, TenantQuota, drive

        def factory():
            gs = Gigascope(cost_model=CostModel())
            gs.register_stream(TCP_SCHEMA)
            gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
            return gs

        engine = StandingQueryEngine(
            factory, quotas={"t": TenantQuota(cycles_per_record=2000.0)}
        )
        sq = engine.register(
            SS_TEXT.replace(" SUPERGROUP BY tb, srcIP", ""),
            name="q",
            tenant="t",
        )
        records = list(feed())
        drive(engine, records, batch_size=BATCH)
        m = sq.instance.metrics
        quota_shed = m.total("stream_quota_shed_total")
        assert quota_shed > 0
        assert m.total("stream_records_total") == len(records)
        assert m.total("stream_records_total") == (
            m.total("stream_ingested_total")
            + m.total("stream_shed_total")
            + m.total("stream_quarantined_total")
            + quota_shed
        )
        # The quota refusals are charged to the stream's cost account.
        assert sq.instance.cost.accounts()["TCP"] >= (
            sq.instance.cost.book.quota_shed * quota_shed
        )
        # run_report() surfaces the same number (shape pinned by
        # tests/obs/test_report_compat.py).
        assert (
            sq.instance.run_report()["streams"]["TCP"]["quota_shed"]
            == quota_shed
        )


class TestQuarantine:
    def test_offered_equals_ingested_plus_quarantined(self):
        from repro.streams.sources import QuarantineStream
        from repro.testing.faults import FaultySource, SourceFault

        records = list(feed())
        damaged = FaultySource(
            records, [SourceFault("corrupt", 5), SourceFault("corrupt", 90)]
        ).damaged
        quarantine = QuarantineStream()
        gs = Gigascope(quarantine=quarantine, validate_admission=True)
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.add_query(SS_TEXT.replace(" SUPERGROUP BY tb, srcIP", ""), name="q")
        gs.run(iter(damaged))
        m = gs.metrics
        quarantined = m.total("stream_quarantined_total")
        assert quarantined == 2
        assert quarantine.total == 2
        assert m.total("stream_records_total") == (
            m.total("stream_ingested_total")
            + m.total("stream_shed_total")
            + quarantined
        )
        # The operator-level mirror: quarantined tuples appear in the
        # query's overload accounting without ever entering the window.
        assert val(gs, "operator_quarantined_tuples_total", query="q") == 2


class TestSerialVsSharded:
    # Counters whose totals are invariant under hash partitioning: every
    # tuple lands in exactly one shard, and keyed supergroups keep the
    # SFUN admission decisions identical to the serial run.  (Window and
    # cleaning counters are *not* invariant: each shard closes its own
    # copy of every window.)
    INVARIANT = [
        "stream_ingested_total",
        "operator_tuples_in_total",
        "operator_tuples_filtered_total",
        "operator_tuples_admitted_total",
        "operator_rows_out_total",
        "operator_groups_created_total",
        "operator_groups_evicted_total",
        "operator_having_rejected_total",
    ]

    def test_partition_invariant_totals_agree(self):
        serial = Gigascope()
        serial.register_stream(TCP_SCHEMA)
        serial.use_stateful_library(subset_sum_library(relax_factor=10.0))
        s_handle = serial.add_query(SS_TEXT, name="q")
        serial.run(feed())

        sharded = ShardedGigascope(shards=2)
        sharded.register_stream(TCP_SCHEMA)
        sharded.use_stateful_library(subset_sum_library(relax_factor=10.0))
        h_handle = sharded.add_query(SS_TEXT, name="q")
        sharded.run(feed(), batch_size=BATCH)

        assert canonical_rows(h_handle.results) == canonical_rows(s_handle.results)
        for name in self.INVARIANT:
            assert sharded.metrics.total(name) == serial.metrics.total(name), name
        # Sanity check the non-invariant counter really is per-shard.
        assert sharded.metrics.total("operator_windows_total") >= serial.metrics.total(
            "operator_windows_total"
        )


class TestSupervisedFault:
    def run_supervised(self, fault_plan=None):
        sh = ShardedGigascope(shards=2, supervise=True, fault_plan=fault_plan)
        sh.register_stream(TCP_SCHEMA)
        sh.use_stateful_library(subset_sum_library(relax_factor=10.0))
        handle = sh.add_query(SS_TEXT, name="q")
        sh.run(feed(seconds=12), batch_size=BATCH)
        return canonical_rows(handle.results), sh

    def test_kill_fault_keeps_counters_byte_identical(self):
        clean_rows, clean = self.run_supervised()
        plan = FaultPlan([Fault(shard=1, action="kill", at_batch=4)])
        fault_rows, faulted = self.run_supervised(fault_plan=plan)

        assert faulted.metrics.total("supervisor_restarts_total") >= 1
        assert clean.metrics.total("supervisor_restarts_total") == 0
        assert fault_rows == clean_rows

        # Checkpoint + journal replay must reconstruct every counter
        # exactly: only the supervisor's own accounting may differ.
        exclude = ("supervisor_",)
        assert list(faulted.metrics.comparable_items(exclude_prefixes=exclude)) == (
            list(clean.metrics.comparable_items(exclude_prefixes=exclude))
        )
