"""Golden tests for the structured trace stream.

Trace events deliberately carry no wall-clock timestamps, so a fixed
query over a fixed seeded feed produces a byte-identical event stream.
These tests pin that stream against checked-in goldens; regenerate with

    pytest tests/obs/test_trace_golden.py --update-goldens

after an intentional change to event kinds or fields.
"""

import os

import pytest

from repro.dsms.runtime import Gigascope
from repro.obs import TraceSink
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

AGG_TEXT = (
    "SELECT tb, srcIP, sum(len), count(*) FROM TCP GROUP BY time/5 as tb, srcIP"
)
SS_TEXT = SUBSET_SUM_QUERY.format(window=5, target=50)


def run_traced(text, library=None, shed_threshold=None):
    sink = TraceSink()
    gs = Gigascope(trace=sink, shed_threshold=shed_threshold)
    gs.register_stream(TCP_SCHEMA)
    if library is not None:
        gs.use_stateful_library(library)
    gs.add_query(text, name="q")
    config = TraceConfig(duration_seconds=15, rate_scale=0.005, seed=31)
    gs.run(research_center_feed(config), batch_size=64)
    return sink


def check_golden(request, name, sink):
    path = os.path.join(GOLDEN_DIR, name)
    lines = list(sink.lines())
    if request.config.getoption("--update-goldens"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        pytest.skip(f"rewrote {name} ({len(lines)} events)")
    if not os.path.exists(path):
        pytest.fail(
            f"golden {name} missing; run pytest --update-goldens to create it"
        )
    with open(path, "r", encoding="utf-8") as fh:
        expected = fh.read().splitlines()
    assert lines == expected


def test_aggregation_trace_matches_golden(request):
    sink = run_traced(AGG_TEXT)
    kinds = sink.kinds()
    assert kinds.get("window_open", 0) > 0
    assert kinds["window_open"] == kinds["window_close"]
    check_golden(request, "aggregation.jsonl", sink)


def test_sampling_trace_matches_golden(request):
    sink = run_traced(SS_TEXT, library=subset_sum_library(relax_factor=2.0))
    kinds = sink.kinds()
    assert kinds.get("window_open", 0) > 0
    assert kinds.get("cleaning_trigger", 0) > 0
    assert kinds.get("group_evicted", 0) > 0
    check_golden(request, "sampling.jsonl", sink)


def test_trace_is_deterministic_across_runs():
    first = run_traced(SS_TEXT, library=subset_sum_library(relax_factor=2.0))
    second = run_traced(SS_TEXT, library=subset_sum_library(relax_factor=2.0))
    assert list(first.lines()) == list(second.lines())
