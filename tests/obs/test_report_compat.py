"""run_report() compatibility: the pre-registry dict shape is pinned.

run_report() predates the metrics registry; callers (and the CLI
--report flag) rely on its exact keys.  It is now a *view* over the
registry, so these tests pin both the shape and the sourcing: every
report number must equal the corresponding registry series.
"""

from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

SS_TEXT = SUBSET_SUM_QUERY.format(window=5, target=200)
# Sharding needs a keyed supergroup to hash-partition the SFUN state on.
SS_SHARDED = SS_TEXT.replace(
    "GROUP BY time/5 as tb, srcIP, destIP, uts",
    "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
)


def feed(seconds=15, seed=3):
    config = TraceConfig(duration_seconds=seconds, rate_scale=0.01, seed=seed)
    return research_center_feed(config)


def build(shed_threshold=None, shards=0):
    if shards:
        gs = ShardedGigascope(shards=shards, shed_threshold=shed_threshold)
    else:
        gs = Gigascope(shed_threshold=shed_threshold)
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
    gs.add_query(SS_SHARDED if shards else SS_TEXT, name="q")
    return gs


class TestReportShape:
    def test_stream_and_query_keys_are_pinned(self):
        gs = build()
        gs.run(feed())
        report = gs.run_report()
        assert set(report) == {"streams", "queries"}
        assert set(report["streams"]["TCP"]) == {
            "drops",
            "backlog",
            "shed",
            "quarantined",
            "quota_shed",
            "poison_skipped",
        }
        assert set(report["queries"]["q"]) == {
            "late_tuples",
            "incomparable_tuples",
            "shed_tuples",
            "quarantined_tuples",
        }
        for section in report.values():
            for entry in section.values():
                for value in entry.values():
                    assert isinstance(value, int)

    def test_only_sampling_queries_are_reported(self):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.add_query(
            "SELECT tb, srcIP, count(*) FROM TCP GROUP BY time/5 as tb, srcIP",
            name="agg",
        )
        gs.run(feed())
        assert gs.run_report()["queries"] == {}


class TestReportSourcing:
    def test_shed_matches_registry(self):
        gs = build(shed_threshold=8)
        gs.run(feed(), batch_size=256)
        report = gs.run_report()
        assert report["streams"]["TCP"]["shed"] == gs.metrics.value(
            "stream_shed_total", stream="TCP"
        )
        assert report["streams"]["TCP"]["shed"] > 0

    def test_query_counters_match_registry(self):
        gs = build()
        gs.run(feed())
        report = gs.run_report()
        for key, metric in [
            ("late_tuples", "operator_late_tuples_total"),
            ("incomparable_tuples", "operator_incomparable_tuples_total"),
            ("shed_tuples", "operator_shed_tuples_total"),
            ("quarantined_tuples", "operator_quarantined_tuples_total"),
        ]:
            assert report["queries"]["q"][key] == gs.metrics.total(
                metric, query="q"
            )

    def test_sharded_report_aggregates_shards(self):
        sh = build(shed_threshold=None, shards=2)
        sh.run(feed(), batch_size=128)
        report = sh.run_report()
        assert set(report) == {"streams", "queries"}
        assert set(report["queries"]["q"]) == {
            "late_tuples",
            "incomparable_tuples",
            "shed_tuples",
            "quarantined_tuples",
        }
