"""Unit tests for the metrics registry, trace sink and exporters.

These pin the contracts the runtime instrumentation relies on: series
identity, in-place checkpoint/restore (bound references must survive a
supervised restart), shard folding semantics (counters add, gauges max),
and the determinism carve-outs (``*_seconds`` excluded from comparison).
"""

import json
import pickle

import pytest

from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    NULL_TRACE,
    TraceSink,
    render_prometheus,
    write_metrics,
)
from repro.obs.metrics import BYTES_BUCKETS, SECONDS_BUCKETS


class TestSeriesIdentity:
    def test_same_labels_same_series(self):
        m = MetricsRegistry()
        a = m.counter("c_total", query="q", shard=0)
        b = m.counter("c_total", shard=0, query="q")  # order-insensitive
        assert a is b
        a.inc(3)
        assert m.value("c_total", query="q", shard=0) == 3

    def test_different_labels_different_series(self):
        m = MetricsRegistry()
        m.counter("c_total", shard=0).inc(1)
        m.counter("c_total", shard=1).inc(2)
        assert m.value("c_total", shard=0) == 1
        assert m.value("c_total", shard=1) == 2
        assert m.total("c_total") == 3

    def test_one_type_per_name(self):
        m = MetricsRegistry()
        m.counter("x_total", shard=0)
        with pytest.raises(ReproError, match="is a counter"):
            m.gauge("x_total", shard=1)

    def test_counter_refuses_negative(self):
        m = MetricsRegistry()
        with pytest.raises(ReproError, match="cannot decrease"):
            m.counter("c_total").inc(-1)

    def test_total_filters_named_labels(self):
        m = MetricsRegistry()
        m.counter("t_total", query="a", shard=0).inc(1)
        m.counter("t_total", query="a", shard=1).inc(2)
        m.counter("t_total", query="b", shard=0).inc(10)
        assert m.total("t_total", query="a") == 3
        assert m.total("t_total", query="b") == 10
        assert m.total("t_total") == 13
        assert m.total("missing_total") == 0


class TestHistogram:
    def test_default_buckets_by_name(self):
        m = MetricsRegistry()
        assert m.histogram("op_seconds").bounds == SECONDS_BUCKETS
        assert m.histogram("blob_bytes").bounds == BYTES_BUCKETS

    def test_observe_and_overflow(self):
        m = MetricsRegistry()
        h = m.histogram("h_bytes", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3 and h.total == 555

    def test_timer_observes_elapsed(self):
        m = MetricsRegistry()
        with m.timer("t_seconds", query="q"):
            pass
        h = m.histogram("t_seconds", query="q")
        assert h.count == 1 and h.total >= 0


class TestCheckpointRestore:
    def test_restore_mutates_in_place(self):
        m = MetricsRegistry()
        c = m.counter("c_total", query="q")
        c.inc(7)
        snap = m.checkpoint()
        c.inc(5)
        m.restore(snap)
        # The *same object* (the bound reference) holds the restored value.
        assert c.value == 7
        assert m.counter("c_total", query="q") is c

    def test_restore_zeroes_unseen_series(self):
        m = MetricsRegistry()
        snap = m.checkpoint()
        late = m.counter("late_total")
        late.inc(4)
        m.restore(snap)
        assert late.value == 0

    def test_checkpoint_pickles(self):
        m = MetricsRegistry()
        m.counter("c_total", shard=2).inc(1)
        m.histogram("h_bytes", buckets=(1, 2)).observe(1.5)
        snap = pickle.loads(pickle.dumps(m.checkpoint()))
        n = MetricsRegistry()
        n.restore(snap)
        assert n.value("c_total", shard=2) == 1
        assert n.value("h_bytes") == 1  # histogram value() is the count

    def test_reset_keeps_references(self):
        m = MetricsRegistry()
        c = m.counter("c_total")
        c.inc(9)
        m.reset()
        assert c.value == 0
        c.inc(1)
        assert m.value("c_total") == 1


class TestAbsorb:
    def test_counters_add_gauges_max(self):
        parent = MetricsRegistry()
        for shard, (count, peak) in enumerate([(5, 30), (7, 20)]):
            worker = MetricsRegistry()
            worker.counter("in_total", query="q").inc(count)
            worker.gauge("peak_groups", query="q").set(peak)
            parent.absorb(worker.checkpoint(), extra_labels={"shard": shard})
        assert parent.value("in_total", query="q", shard=0) == 5
        assert parent.value("in_total", query="q", shard=1) == 7
        assert parent.total("in_total", query="q") == 12
        # Absorbing twice folds again (counters are cumulative).
        assert parent.value("peak_groups", query="q", shard=0) == 30

    def test_absorb_merges_histograms(self):
        parent = MetricsRegistry()
        for shard in range(2):
            worker = MetricsRegistry()
            worker.histogram("h_bytes", buckets=(10,)).observe(3)
            parent.absorb(worker.checkpoint(), extra_labels={"shard": shard})
        assert parent.total("h_bytes") == 2


class TestComparableItems:
    def test_excludes_seconds_and_prefixes(self):
        m = MetricsRegistry()
        m.counter("rows_total").inc(1)
        m.histogram("op_seconds").observe(0.5)
        m.counter("supervisor_restarts_total", shard=0).inc(1)
        names = [name for name, _, _ in m.comparable_items()]
        assert "rows_total" in names and "op_seconds" not in names
        names = [
            name
            for name, _, _ in m.comparable_items(exclude_prefixes=("supervisor_",))
        ]
        assert names == ["rows_total"]


class TestExport:
    def test_prometheus_rendering(self):
        m = MetricsRegistry()
        m.counter("rows_total", help="rows seen", query="q").inc(3)
        m.histogram("h_bytes", buckets=(10, 100), query="q").observe(50)
        text = render_prometheus(m)
        assert '# HELP rows_total rows seen' in text
        assert '# TYPE rows_total counter' in text
        assert 'rows_total{query="q"} 3' in text
        # Buckets are cumulative in the exposition format.
        assert 'h_bytes_bucket{query="q",le="10"} 0' in text
        assert 'h_bytes_bucket{query="q",le="100"} 1' in text
        assert 'h_bytes_bucket{query="q",le="+Inf"} 1' in text
        assert 'h_bytes_count{query="q"} 1' in text

    def test_write_metrics_json_and_prom(self, tmp_path):
        m = MetricsRegistry()
        m.counter("rows_total", query="q").inc(2)
        json_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        assert write_metrics(m, str(json_path)) == 1
        assert write_metrics(m, str(prom_path)) == 1
        data = json.loads(json_path.read_text())
        assert data["metrics"][0]["name"] == "rows_total"
        assert data["metrics"][0]["value"] == 2
        assert "rows_total" in prom_path.read_text()

    def test_label_escaping(self):
        m = MetricsRegistry()
        m.counter("c_total", q='we"ird\nname').inc(1)
        text = render_prometheus(m)
        assert 'q="we\\"ird\\nname"' in text


class TestTraceSink:
    def test_emit_sequences_and_jsonl(self, tmp_path):
        sink = TraceSink()
        sink.emit("window_open", query="q", window=[0])
        sink.emit("window_close", query="q", window=[0], rows_out=2)
        assert [e.seq for e in sink.events] == [0, 1]
        assert sink.kinds() == {"window_open": 1, "window_close": 1}
        path = tmp_path / "t.jsonl"
        assert sink.write_jsonl(str(path)) == 2
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "window_open"

    def test_limit_drops_oldest_visibly(self):
        sink = TraceSink(limit=2)
        for i in range(5):
            sink.emit("window_open", window=[i])
        assert len(sink.events) == 2
        assert sink.dropped_events == 3
        assert sink.events[-1].fields["window"] == [4]

    def test_absorb_restamps_and_marks_shard(self):
        parent = TraceSink()
        child = TraceSink()
        child.emit("window_open", query="q", window=[1])
        parent.absorb(child.events, shard=3)
        assert parent.events[0].fields["shard"] == 3
        assert parent.events[0].seq == 0

    def test_checkpoint_round_trip(self):
        sink = TraceSink()
        sink.emit("shed", stream="TCP", count=5)
        snap = pickle.loads(pickle.dumps(sink.checkpoint()))
        other = TraceSink()
        other.restore(snap)
        assert other.events[0].kind == "shed"
        other.emit("shed", stream="TCP", count=1)
        assert other.events[-1].seq == 1

    def test_null_sink_is_inert(self):
        NULL_TRACE.emit("window_open", window=[0])
        assert len(NULL_TRACE) == 0
        assert not NULL_TRACE.enabled
