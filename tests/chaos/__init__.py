"""Chaos suite: real process kills, torn traces, stalled sources."""
