"""Serving chaos: kill the whole server process, resume the standing set.

A child process runs a journalled serve — several standing queries
registered and one retired at scheduled record offsets — and hard-exits
(``os._exit``, via :func:`repro.testing.faults.exit_after_commits`)
right after its Nth serving-journal commit.  The parent resumes from
the journal the corpse left behind and must recover *the entire
standing-query set*: same queries, same registration/retirement
offsets, and rows/metrics/cost byte-identical to an uninterrupted
in-process serve of the same schedule.

Every scheduled registry event lands before the earliest kill point, so
the uninterrupted full-schedule run is a valid oracle (an event the
journal never recorded is correctly lost by a crash — that is
durability semantics, not a bug — and would simply make the oracle
wrong, so the schedule is arranged to be durable first).

Run with ``pytest -m chaos``; the tier-1 suite deselects the marker.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.serving.server import drive, resume_serving, StandingQueryEngine

from tests.serving.conftest import (
    EXAMPLE_TEXTS,
    instance_state,
    make_instance,
)

pytestmark = pytest.mark.chaos

FEED_ARGS = "duration_seconds=25, rate_scale=0.01, seed=3"
BATCH = 128
COMMIT_INTERVAL = 2  # a commit every 256 records

#: all events land by record 700, before the earliest kill point
#: (commit 4 = 828 records consumed, counting the short batches the
#: driver cuts at event offsets), so every event is durable pre-crash.
SCHEDULE = [
    {"kind": "register", "offset": 0, "text": EXAMPLE_TEXTS["reservoir"],
     "name": "q", "tenant": "acme", "qid": "sqA"},
    {"kind": "register", "offset": 300, "text": EXAMPLE_TEXTS["big_flows"],
     "name": "q", "tenant": "beta", "qid": "sqB"},
    {"kind": "register", "offset": 300, "text": EXAMPLE_TEXTS["top_talkers"],
     "name": "q", "tenant": "acme", "qid": "sqC"},
    {"kind": "unregister", "offset": 700, "qid": "sqA"},
]

_CHILD = textwrap.dedent(
    """
    import json
    import sys
    from repro.dsms.cost import CostModel
    from repro.dsms.runtime import Gigascope
    from repro.serving.journal import ServingJournal
    from repro.serving.server import StandingQueryEngine, drive
    from repro.streams.schema import TCP_SCHEMA
    from repro.streams.traces import TraceConfig, research_center_feed
    from repro.testing.faults import exit_after_commits
    from repro.algorithms.bindings import (
        basic_subset_sum_library,
        distinct_sampling_library,
        heavy_hitters_library,
        reservoir_library,
        subset_sum_library,
    )

    journal, kill_at, schedule_json = sys.argv[1], int(sys.argv[2]), sys.argv[3]
    schedule = json.loads(schedule_json)

    def factory():
        gs = Gigascope(cost_model=CostModel())
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.use_stateful_library(basic_subset_sum_library())
        gs.use_stateful_library(reservoir_library())
        gs.use_stateful_library(heavy_hitters_library())
        gs.use_stateful_library(distinct_sampling_library())
        return gs

    engine = StandingQueryEngine(
        factory,
        journal=ServingJournal(journal, fresh=True),
        on_commit=exit_after_commits(kill_at, exit_code=86),
    )
    feed = research_center_feed(TraceConfig({feed_args}))
    drive(
        engine,
        feed,
        schedule=schedule,
        batch_size={batch},
        commit_interval={commit_interval},
    )
    # Reaching the end means the kill point was never hit.
    sys.exit(3)
    """
).replace("{feed_args}", FEED_ARGS).replace("{batch}", str(BATCH)).replace(
    "{commit_interval}", str(COMMIT_INTERVAL)
)


def feed():
    from repro.streams.traces import TraceConfig, research_center_feed

    return list(
        research_center_feed(
            TraceConfig(duration_seconds=25, rate_scale=0.01, seed=3)
        )
    )


def kill_server_at_commit(journal_path, kill_at):
    import json

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    err_path = journal_path + ".stderr"
    with open(err_path, "wb") as err:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _CHILD,
                journal_path,
                str(kill_at),
                json.dumps(SCHEDULE),
            ],
            env=env,
            start_new_session=True,
            stdout=subprocess.DEVNULL,
            stderr=err,
        )
        try:
            proc.wait(timeout=90)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    with open(err_path, "rb") as fh:
        stderr = fh.read()
    assert proc.returncode == 86, (
        f"child should die at commit {kill_at}, got rc={proc.returncode}:"
        f" {stderr.decode(errors='replace')[-500:]}"
    )


def uninterrupted_oracle():
    engine = StandingQueryEngine(make_instance)
    drive(
        engine,
        feed(),
        schedule=SCHEDULE,
        batch_size=BATCH,
        commit_interval=COMMIT_INTERVAL,
    )
    return engine


def assert_engines_identical(resumed, oracle):
    assert {sq.qid for sq in resumed.queries()} == {
        sq.qid for sq in oracle.queries()
    }
    assert resumed.consumed == oracle.consumed
    for expected in oracle.queries():
        recovered = resumed.lookup(expected.qid)
        assert recovered.tenant == expected.tenant
        assert recovered.registered_at == expected.registered_at
        assert recovered.unregistered_at == expected.unregistered_at
        assert instance_state(recovered.instance, recovered.name) == (
            instance_state(expected.instance, expected.name)
        ), f"{expected.qid} diverged after crash+resume"


class TestServingCrashResume:
    @pytest.mark.parametrize("kill_at", [4, 7], ids=["early", "late"])
    def test_resume_restores_the_standing_set(self, tmp_path, kill_at):
        journal = str(tmp_path / "serve.wal")
        kill_server_at_commit(journal, kill_at)
        resumed = resume_serving(
            make_instance,
            journal,
            feed(),
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )
        assert resumed.closed
        assert_engines_identical(resumed, uninterrupted_oracle())

    def test_double_crash_double_resume(self, tmp_path):
        """Crash, resume, crash the resume, resume again — still identical."""
        journal = str(tmp_path / "serve.wal")
        kill_server_at_commit(journal, 4)

        boom = {"commits": 0}

        def explode(consumed, kind):
            boom["commits"] += 1
            if boom["commits"] >= 2:
                raise KeyboardInterrupt("simulated second crash")

        with pytest.raises(KeyboardInterrupt):
            resume_serving(
                make_instance,
                journal,
                feed(),
                batch_size=BATCH,
                commit_interval=COMMIT_INTERVAL,
                on_commit=explode,
            )
        resumed = resume_serving(
            make_instance,
            journal,
            feed(),
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )
        assert_engines_identical(resumed, uninterrupted_oracle())

    def test_resume_of_a_completed_serve_reads_no_input(self, tmp_path):
        """After a clean close, resume restores from the final entry."""
        from repro.serving.journal import ServingJournal

        journal = str(tmp_path / "serve.wal")
        engine = StandingQueryEngine(
            make_instance, journal=ServingJournal(journal, fresh=True)
        )
        drive(
            engine,
            feed(),
            schedule=SCHEDULE,
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )

        def no_records():
            raise AssertionError("a completed serve must not re-read input")
            yield  # pragma: no cover

        resumed = resume_serving(make_instance, journal, no_records())
        assert resumed.closed
        assert_engines_identical(resumed, engine)
