"""Serving chaos: kill the whole server process, resume the standing set.

A child process runs a journalled serve — several standing queries
registered and one retired at scheduled record offsets — and hard-exits
(``os._exit``, via :func:`repro.testing.faults.exit_after_commits`)
right after its Nth serving-journal commit.  The parent resumes from
the journal the corpse left behind and must recover *the entire
standing-query set*: same queries, same registration/retirement
offsets, and rows/metrics/cost byte-identical to an uninterrupted
in-process serve of the same schedule.

Every scheduled registry event lands before the earliest kill point, so
the uninterrupted full-schedule run is a valid oracle (an event the
journal never recorded is correctly lost by a crash — that is
durability semantics, not a bug — and would simply make the oracle
wrong, so the schedule is arranged to be durable first).

Run with ``pytest -m chaos``; the tier-1 suite deselects the marker.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.serving.server import drive, resume_serving, StandingQueryEngine

from tests.serving.conftest import (
    EXAMPLE_TEXTS,
    instance_state,
    make_instance,
)

pytestmark = pytest.mark.chaos

FEED_ARGS = "duration_seconds=25, rate_scale=0.01, seed=3"
BATCH = 128
COMMIT_INTERVAL = 2  # a commit every 256 records

#: all events land by record 700, before the earliest kill point
#: (commit 4 = 828 records consumed, counting the short batches the
#: driver cuts at event offsets), so every event is durable pre-crash.
SCHEDULE = [
    {"kind": "register", "offset": 0, "text": EXAMPLE_TEXTS["reservoir"],
     "name": "q", "tenant": "acme", "qid": "sqA"},
    {"kind": "register", "offset": 300, "text": EXAMPLE_TEXTS["big_flows"],
     "name": "q", "tenant": "beta", "qid": "sqB"},
    {"kind": "register", "offset": 300, "text": EXAMPLE_TEXTS["top_talkers"],
     "name": "q", "tenant": "acme", "qid": "sqC"},
    {"kind": "unregister", "offset": 700, "qid": "sqA"},
]

_CHILD = textwrap.dedent(
    """
    import json
    import sys
    from repro.dsms.cost import CostModel
    from repro.dsms.runtime import Gigascope
    from repro.serving.journal import ServingJournal
    from repro.serving.server import StandingQueryEngine, drive
    from repro.streams.schema import TCP_SCHEMA
    from repro.streams.traces import TraceConfig, research_center_feed
    from repro.testing.faults import exit_after_commits
    from repro.algorithms.bindings import (
        basic_subset_sum_library,
        distinct_sampling_library,
        heavy_hitters_library,
        reservoir_library,
        subset_sum_library,
    )

    journal, kill_at, schedule_json = sys.argv[1], int(sys.argv[2]), sys.argv[3]
    schedule = json.loads(schedule_json)

    def factory():
        gs = Gigascope(cost_model=CostModel())
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.use_stateful_library(basic_subset_sum_library())
        gs.use_stateful_library(reservoir_library())
        gs.use_stateful_library(heavy_hitters_library())
        gs.use_stateful_library(distinct_sampling_library())
        return gs

    engine = StandingQueryEngine(
        factory,
        journal=ServingJournal(journal, fresh=True),
        on_commit=exit_after_commits(kill_at, exit_code=86),
    )
    feed = research_center_feed(TraceConfig({feed_args}))
    drive(
        engine,
        feed,
        schedule=schedule,
        batch_size={batch},
        commit_interval={commit_interval},
    )
    # Reaching the end means the kill point was never hit.
    sys.exit(3)
    """
).replace("{feed_args}", FEED_ARGS).replace("{batch}", str(BATCH)).replace(
    "{commit_interval}", str(COMMIT_INTERVAL)
)


def feed():
    from repro.streams.traces import TraceConfig, research_center_feed

    return list(
        research_center_feed(
            TraceConfig(duration_seconds=25, rate_scale=0.01, seed=3)
        )
    )


def kill_server_at_commit(journal_path, kill_at):
    import json

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    err_path = journal_path + ".stderr"
    with open(err_path, "wb") as err:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _CHILD,
                journal_path,
                str(kill_at),
                json.dumps(SCHEDULE),
            ],
            env=env,
            start_new_session=True,
            stdout=subprocess.DEVNULL,
            stderr=err,
        )
        try:
            proc.wait(timeout=90)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    with open(err_path, "rb") as fh:
        stderr = fh.read()
    assert proc.returncode == 86, (
        f"child should die at commit {kill_at}, got rc={proc.returncode}:"
        f" {stderr.decode(errors='replace')[-500:]}"
    )


def uninterrupted_oracle():
    engine = StandingQueryEngine(make_instance)
    drive(
        engine,
        feed(),
        schedule=SCHEDULE,
        batch_size=BATCH,
        commit_interval=COMMIT_INTERVAL,
    )
    return engine


def assert_engines_identical(resumed, oracle):
    assert {sq.qid for sq in resumed.queries()} == {
        sq.qid for sq in oracle.queries()
    }
    assert resumed.consumed == oracle.consumed
    for expected in oracle.queries():
        recovered = resumed.lookup(expected.qid)
        assert recovered.tenant == expected.tenant
        assert recovered.registered_at == expected.registered_at
        assert recovered.unregistered_at == expected.unregistered_at
        assert instance_state(recovered.instance, recovered.name) == (
            instance_state(expected.instance, expected.name)
        ), f"{expected.qid} diverged after crash+resume"


class TestServingCrashResume:
    @pytest.mark.parametrize("kill_at", [4, 7], ids=["early", "late"])
    def test_resume_restores_the_standing_set(self, tmp_path, kill_at):
        journal = str(tmp_path / "serve.wal")
        kill_server_at_commit(journal, kill_at)
        resumed = resume_serving(
            make_instance,
            journal,
            feed(),
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )
        assert resumed.closed
        assert_engines_identical(resumed, uninterrupted_oracle())

    def test_double_crash_double_resume(self, tmp_path):
        """Crash, resume, crash the resume, resume again — still identical."""
        journal = str(tmp_path / "serve.wal")
        kill_server_at_commit(journal, 4)

        boom = {"commits": 0}

        def explode(consumed, kind):
            boom["commits"] += 1
            if boom["commits"] >= 2:
                raise KeyboardInterrupt("simulated second crash")

        with pytest.raises(KeyboardInterrupt):
            resume_serving(
                make_instance,
                journal,
                feed(),
                batch_size=BATCH,
                commit_interval=COMMIT_INTERVAL,
                on_commit=explode,
            )
        resumed = resume_serving(
            make_instance,
            journal,
            feed(),
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )
        assert_engines_identical(resumed, uninterrupted_oracle())

    def test_resume_of_a_completed_serve_reads_no_input(self, tmp_path):
        """After a clean close, resume restores from the final entry."""
        from repro.serving.journal import ServingJournal

        journal = str(tmp_path / "serve.wal")
        engine = StandingQueryEngine(
            make_instance, journal=ServingJournal(journal, fresh=True)
        )
        drive(
            engine,
            feed(),
            schedule=SCHEDULE,
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )

        def no_records():
            raise AssertionError("a completed serve must not re-read input")
            yield  # pragma: no cover

        resumed = resume_serving(make_instance, journal, no_records())
        assert resumed.closed
        assert_engines_identical(resumed, engine)


#: Dies with os._exit mid-way through appending a register event: the
#: frame header and half the payload reach the disk, fsynced, so the
#: journal's final frame fails its CRC — the torn-tail recovery path.
_TORN_CHILD = textwrap.dedent(
    """
    import os
    import pickle
    import sys
    import zlib
    from repro.dsms import durability
    from repro.dsms.cost import CostModel
    from repro.dsms.runtime import Gigascope
    from repro.serving.journal import ServingJournal
    from repro.serving.server import StandingQueryEngine
    from repro.streams.schema import TCP_SCHEMA
    from repro.streams.traces import TraceConfig, research_center_feed
    from repro.algorithms.bindings import (
        basic_subset_sum_library,
        distinct_sampling_library,
        heavy_hitters_library,
        reservoir_library,
        subset_sum_library,
    )

    journal_path, text = sys.argv[1], sys.argv[2]

    def factory():
        gs = Gigascope(cost_model=CostModel())
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.use_stateful_library(basic_subset_sum_library())
        gs.use_stateful_library(reservoir_library())
        gs.use_stateful_library(heavy_hitters_library())
        gs.use_stateful_library(distinct_sampling_library())
        return gs

    engine = StandingQueryEngine(
        factory, journal=ServingJournal(journal_path, fresh=True)
    )
    engine.register(text, name="q", qid="sqA")
    records = list(
        research_center_feed(TraceConfig({feed_args}))
    )
    for start in range(0, 512, {batch}):
        engine.feed(records[start : start + {batch}])
    engine.commit()

    # Tear the next register event's frame: write the length/CRC header
    # and half the pickled payload, make it durable, die.
    raw = engine.journal._journal
    payload = pickle.dumps(
        {"serving_version": 1, "kind": "register", "qid": "sqB",
         "name": "q", "text": text, "tenant": "default", "offset": 512}
    )
    raw._fh.write(durability._FRAME.pack(len(payload), zlib.crc32(payload)))
    raw._fh.write(payload[: len(payload) // 2])
    raw._fh.flush()
    os.fsync(raw._fh.fileno())
    os._exit(86)
    """
).replace("{feed_args}", FEED_ARGS).replace("{batch}", str(BATCH))


#: Runs a journalled QueryServer with signal handlers and a paced feed;
#: the parent SIGTERMs it mid-stream and expects a graceful drain:
#: windows flushed, final commit durable, DRAIN_EXIT_CODE (3).
_DRAIN_CHILD = textwrap.dedent(
    """
    import asyncio
    import sys
    from repro.dsms.cost import CostModel
    from repro.dsms.runtime import Gigascope
    from repro.serving.journal import ServingJournal
    from repro.serving.server import (
        DRAIN_EXIT_CODE,
        QueryServer,
        StandingQueryEngine,
    )
    from repro.streams.schema import TCP_SCHEMA
    from repro.streams.traces import TraceConfig, research_center_feed
    from repro.algorithms.bindings import (
        basic_subset_sum_library,
        distinct_sampling_library,
        heavy_hitters_library,
        reservoir_library,
        subset_sum_library,
    )

    journal_path, text_a, text_b = sys.argv[1], sys.argv[2], sys.argv[3]

    def factory():
        gs = Gigascope(cost_model=CostModel())
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.use_stateful_library(basic_subset_sum_library())
        gs.use_stateful_library(reservoir_library())
        gs.use_stateful_library(heavy_hitters_library())
        gs.use_stateful_library(distinct_sampling_library())
        return gs

    engine = StandingQueryEngine(
        factory, journal=ServingJournal(journal_path, fresh=True)
    )
    engine.register(text_a, name="q", qid="sqA")
    engine.register(text_b, name="q", qid="sqB")
    records = list(research_center_feed(TraceConfig({feed_args})))
    server = QueryServer(
        engine, batch_size={batch}, commit_interval={commit_interval},
        pace=0.1,
    )

    async def main():
        assert server.install_signal_handlers()
        print("READY", flush=True)
        await server.ingest(records, close=True)

    asyncio.run(main())
    sys.exit(DRAIN_EXIT_CODE if server.drained else 0)
    """
).replace("{feed_args}", FEED_ARGS).replace("{batch}", str(BATCH)).replace(
    "{commit_interval}", str(COMMIT_INTERVAL)
)


def run_child(args, journal_path, expect_rc, send_sigterm_after=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    err_path = journal_path + ".stderr"
    with open(err_path, "wb") as err:
        proc = subprocess.Popen(
            [sys.executable, "-c"] + args,
            env=env,
            start_new_session=True,
            stdout=subprocess.PIPE,
            stderr=err,
        )
        try:
            if send_sigterm_after is not None:
                # Wait for the child's READY handshake (loop running,
                # handlers installed) before signalling it.
                line = proc.stdout.readline()
                assert b"READY" in line, line
                import time

                time.sleep(send_sigterm_after)
                proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=90)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    with open(err_path, "rb") as fh:
        stderr = fh.read()
    assert proc.returncode == expect_rc, (
        f"expected rc={expect_rc}, got rc={proc.returncode}:"
        f" {stderr.decode(errors='replace')[-800:]}"
    )


class TestServingJournalTornTail:
    def test_resume_tolerates_a_torn_registration_frame(self, tmp_path):
        """Killed mid-append of a register event: the half-written frame
        fails its CRC and is dropped; everything before it — the
        standing set and the last commit — recovers byte-identically."""
        journal = str(tmp_path / "serve.wal")
        text = EXAMPLE_TEXTS["big_flows"]
        run_child([_TORN_CHILD, journal, text], journal, expect_rc=86)

        resumed = resume_serving(
            make_instance,
            journal,
            feed(),
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )
        # The torn register never happened; the survivor replayed the
        # whole stream.
        assert [sq.qid for sq in resumed.queries()] == ["sqA"]
        oracle = StandingQueryEngine(make_instance)
        drive(
            oracle,
            feed(),
            schedule=[{"kind": "register", "offset": 0, "text": text,
                       "name": "q", "qid": "sqA"}],
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )
        assert_engines_identical(resumed, oracle)


class TestGracefulDrainChaos:
    def test_sigterm_drains_commits_and_resume_reads_no_input(self, tmp_path):
        """SIGTERM mid-stream: the server exits DRAIN_EXIT_CODE with a
        durable final commit; --resume replays nothing and the drained
        prefix equals an honest short serve of the same records."""
        from repro.serving.server import DRAIN_EXIT_CODE

        journal = str(tmp_path / "serve.wal")
        text_a = EXAMPLE_TEXTS["big_flows"]
        text_b = EXAMPLE_TEXTS["top_talkers"]
        run_child(
            [_DRAIN_CHILD, journal, text_a, text_b],
            journal,
            expect_rc=DRAIN_EXIT_CODE,
            send_sigterm_after=0.5,
        )

        def no_records():
            raise AssertionError("a drained serve must not re-read input")
            yield  # pragma: no cover

        resumed = resume_serving(make_instance, journal, no_records())
        assert resumed.closed
        consumed = resumed.consumed
        assert 0 < consumed < len(feed())  # genuinely cut short
        assert consumed % BATCH == 0  # at a batch boundary

        oracle = StandingQueryEngine(make_instance)
        oracle.register(text_a, name="q", qid="sqA")
        oracle.register(text_b, name="q", qid="sqB")
        drive(
            oracle,
            feed()[:consumed],
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )
        assert_engines_identical(resumed, oracle)


#: Poisoned serve: the POISON scalar starts raising at a fixed stream
#: time, the breaker quarantines the query, and the process is killed
#: after its Nth commit — resume must restore breaker + dead-letter
#: state and replay to the same terminal quarantine.
_POISON_CHILD = textwrap.dedent(
    """
    import sys
    from repro.dsms.cost import CostModel
    from repro.dsms.runtime import Gigascope
    from repro.serving.faults import BreakerConfig
    from repro.serving.journal import ServingJournal
    from repro.serving.server import StandingQueryEngine, drive
    from repro.streams.schema import TCP_SCHEMA
    from repro.streams.traces import TraceConfig, research_center_feed
    from repro.testing.faults import exit_after_commits
    from repro.algorithms.bindings import (
        basic_subset_sum_library,
        distinct_sampling_library,
        heavy_hitters_library,
        reservoir_library,
        subset_sum_library,
    )

    journal_path, kill_at = sys.argv[1], int(sys.argv[2])
    poison_text = sys.argv[3]
    healthy_text = sys.argv[4]

    def poison(value):
        if value >= {poison_after}:
            raise RuntimeError("poisoned scalar blew up")
        return 1

    def factory():
        gs = Gigascope(cost_model=CostModel())
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.use_stateful_library(basic_subset_sum_library())
        gs.use_stateful_library(reservoir_library())
        gs.use_stateful_library(heavy_hitters_library())
        gs.use_stateful_library(distinct_sampling_library())
        gs.register_scalar("POISON", poison, deterministic=True)
        return gs

    engine = StandingQueryEngine(
        factory,
        journal=ServingJournal(journal_path, fresh=True),
        on_commit=exit_after_commits(kill_at, exit_code=86),
        breaker=BreakerConfig(failure_threshold=2, cooldown_batches=3),
    )
    engine.register(poison_text, name="q", qid="bad")
    engine.register(healthy_text, name="q", qid="good")
    feed = research_center_feed(TraceConfig({feed_args}))
    drive(
        engine, feed, batch_size={batch}, commit_interval={commit_interval}
    )
    sys.exit(3)
    """
).replace("{feed_args}", FEED_ARGS).replace("{batch}", str(BATCH)).replace(
    "{commit_interval}", str(COMMIT_INTERVAL)
).replace("{poison_after}", "4")

POISON_TEXT = (
    "SELECT tb, count(*) FROM TCP WHERE POISON(time) > 0"
    " GROUP BY time/10 as tb"
)


def poison_make_instance():
    def poison(value):
        if value >= 4:
            raise RuntimeError("poisoned scalar blew up")
        return 1

    gs = make_instance()
    gs.register_scalar("POISON", poison, deterministic=True)
    return gs


class TestPoisonCrashResume:
    @pytest.mark.parametrize("kill_at", [4, 8], ids=["early", "late"])
    def test_quarantine_state_survives_crash_and_resume(
        self, tmp_path, kill_at
    ):
        """Kill after commit N (with the breaker already open for the
        poisoned query), resume, and land byte-identical to an
        uninterrupted poisoned serve — including breaker state and the
        dead-letter ledger, which must not double-count the replayed
        failures."""
        from repro.serving.faults import BreakerConfig

        journal = str(tmp_path / "serve.wal")
        healthy_text = EXAMPLE_TEXTS["big_flows"]
        run_child(
            [_POISON_CHILD, journal, str(kill_at), POISON_TEXT, healthy_text],
            journal,
            expect_rc=86,
        )
        breaker = BreakerConfig(failure_threshold=2, cooldown_batches=3)
        resumed = resume_serving(
            poison_make_instance,
            journal,
            feed(),
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
            breaker=breaker,
        )
        oracle = StandingQueryEngine(poison_make_instance, breaker=breaker)
        oracle.register(POISON_TEXT, name="q", qid="bad")
        oracle.register(healthy_text, name="q", qid="good")
        drive(
            oracle,
            feed(),
            batch_size=BATCH,
            commit_interval=COMMIT_INTERVAL,
        )
        assert_engines_identical(resumed, oracle)
        for qid in ("bad", "good"):
            assert resumed.lookup(qid).breaker.checkpoint() == (
                oracle.lookup(qid).breaker.checkpoint()
            ), f"{qid} breaker diverged after crash+resume"
        assert resumed.lookup("bad").breaker.state == "open"
        assert resumed.dead_letters.checkpoint() == (
            oracle.dead_letters.checkpoint()
        )
