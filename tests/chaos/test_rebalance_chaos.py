"""Chaos tests for elastic rebalancing: crashes during live migration.

Two failure windows matter for the rebalancer (DESIGN.md §12):

* a **shard worker** dying while a migration is in flight — the restore
  message may be queued, half-applied, or lost with the corpse.  The
  supervisor's normal restart path must recover the worker from the
  *post-migration* checkpoint set (``install_checkpoints`` rewrites all
  parent-side slots before sending anything), so the run still matches
  serial execution byte for byte;
* the **whole process** dying between the migration barrier and the
  next durable journal commit — the journal then knows nothing about
  the migration.  ``--resume`` restores the pre-migration routing table
  that rode the last commit and replays; because every rebalancing
  decision is a pure function of the record counts, the replay re-makes
  the same migration at the same round and converges on identical rows.

Both run over an 80%-hot-key workload (the paper's DDoS victim-key
skew), injected with the deterministic ``hot_key`` fault.

Run with ``pytest -m chaos``; the tier-1 suite deselects the marker.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.dsms.durability import DurableRunner, ResultJournal
from repro.dsms.rebalance import RebalancePolicy
from repro.dsms.resilience import SupervisionPolicy
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope, canonical_rows
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.testing.faults import Fault, FaultPlan, hot_key_stream
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

pytestmark = pytest.mark.chaos

SS_SHARDED = SUBSET_SUM_QUERY.format(window=5, target=200).replace(
    "GROUP BY time/5 as tb, srcIP, destIP, uts",
    "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
)
AGG_TEXT = "SELECT tb, srcIP, sum(len), count(*) FROM TCP GROUP BY time/5 as tb, srcIP"

HOT_IP = 0x0A0A0A0A  # the DDoS victim key
FEED_ARGS = "duration_seconds=15, rate_scale=0.01, seed=3"


def feed():
    recs = list(
        research_center_feed(TraceConfig(duration_seconds=15, rate_scale=0.01, seed=3))
    )
    return hot_key_stream(recs, "srcIP", HOT_IP, fraction=0.8)


def policy():
    return RebalancePolicy(check_interval=2, min_records=64, max_shards=4)


def serial_rows(text, library=None):
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    if library is not None:
        gs.use_stateful_library(library)
    handle = gs.add_query(text, name="q")
    gs.run(iter(feed()))
    return canonical_rows(handle.results)


class TestKillShardMidMigration:
    """A worker dies while migrations are in flight: output == serial."""

    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("shard", [0, 1])
    @pytest.mark.parametrize("at_batch", [3, 6], ids=["early", "mid"])
    def test_agg_state_survives(self, shard, at_batch):
        expected = serial_rows(AGG_TEXT)
        plan = FaultPlan([Fault(shard=shard, action="kill", at_batch=at_batch)])
        sh = ShardedGigascope(
            shards=2,
            supervise=True,
            supervision=SupervisionPolicy(max_restarts=2),
            rebalance=policy(),
            fault_plan=plan,
        )
        sh.register_stream(TCP_SCHEMA)
        handle = sh.add_query(AGG_TEXT, name="q")
        sh.run(iter(feed()), batch_size=64)
        assert canonical_rows(handle.results) == expected
        assert sh.last_supervision.total_restarts == 1
        report = sh.run_report()["rebalance"]
        assert report["plans"] >= 1  # migrations actually happened

    @pytest.mark.timeout(180)
    def test_sfun_supergroup_state_survives(self):
        expected = serial_rows(SS_SHARDED, subset_sum_library(relax_factor=10.0))
        assert expected
        plan = FaultPlan([Fault(shard=1, action="kill", at_batch=4)])
        sh = ShardedGigascope(
            shards=2,
            supervise=True,
            supervision=SupervisionPolicy(max_restarts=2),
            rebalance=policy(),
            fault_plan=plan,
        )
        sh.register_stream(TCP_SCHEMA)
        sh.use_stateful_library(subset_sum_library(relax_factor=10.0))
        handle = sh.add_query(SS_SHARDED, name="q")
        sh.run(iter(feed()), batch_size=64)
        assert canonical_rows(handle.results) == expected
        assert sh.last_supervision.total_restarts == 1
        assert sh.run_report()["rebalance"]["migrated_groups"] >= 1


# The child hard-exits right after the Nth *migration commit* — i.e.
# between the migration barrier and the durable journal commit that
# would have recorded the new routing table.  No atexit, no cleanup.
_CHILD = textwrap.dedent(
    """
    import os
    import sys
    from repro.dsms.durability import DurableRunner
    from repro.dsms.rebalance import RebalancePolicy
    from repro.dsms.resilience import SupervisionPolicy
    from repro.dsms.sharded import ShardedGigascope
    from repro.streams.schema import TCP_SCHEMA
    from repro.streams.traces import TraceConfig, research_center_feed
    from repro.testing.faults import hot_key_stream
    from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

    journal, kill_after = sys.argv[1], int(sys.argv[2])
    sql = SUBSET_SUM_QUERY.format(window=5, target=200).replace(
        "GROUP BY time/5 as tb, srcIP, destIP, uts",
        "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
    )
    sh = ShardedGigascope(
        shards=2,
        supervise=True,
        supervision=SupervisionPolicy(max_restarts=2),
        rebalance=RebalancePolicy(check_interval=2, min_records=64, max_shards=4),
    )
    sh.register_stream(TCP_SCHEMA)
    sh.use_stateful_library(subset_sum_library(relax_factor=10.0))
    sh.add_query(sql, name="q")

    # Die between the migration barrier and the journal commit: right
    # after the Nth committed migration, before control returns to the
    # durable runner's on_round commit.
    original = ShardedGigascope._rebalance_supervised
    seen = {"migrations": 0}

    def crashing(self, supervisor):
        before = self._rebalancer.report.plans
        original(self, supervisor)
        if self._rebalancer.report.plans > before:
            seen["migrations"] += 1
            if seen["migrations"] >= kill_after:
                os._exit(86)

    ShardedGigascope._rebalance_supervised = crashing

    runner = DurableRunner(sh, journal, batch_size=64, commit_interval=2)
    recs = list(research_center_feed(TraceConfig({feed_args})))
    recs = hot_key_stream(recs, "srcIP", {hot_ip}, fraction=0.8)
    runner.run(iter(recs))
    sys.exit(3)  # the kill point was never reached
    """
).replace("{feed_args}", FEED_ARGS).replace("{hot_ip}", str(HOT_IP))


def kill_child_after_migration(journal_path, kill_after):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    err_path = journal_path + ".stderr"
    with open(err_path, "wb") as err:
        proc = subprocess.Popen(
            [sys.executable, "-c", _CHILD, journal_path, str(kill_after)],
            env=env,
            start_new_session=True,
            stdout=subprocess.DEVNULL,
            stderr=err,
        )
        try:
            proc.wait(timeout=120)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    with open(err_path, "rb") as fh:
        stderr = fh.read()
    assert proc.returncode == 86, (
        f"child should die after migration {kill_after}, got"
        f" rc={proc.returncode}: {stderr.decode(errors='replace')[-500:]}"
    )


class TestKillBetweenMigrationAndCommit:
    @pytest.mark.timeout(240)
    @pytest.mark.parametrize("kill_after", [1, 3])
    def test_resume_replays_the_same_routing_history(self, tmp_path, kill_after):
        journal = str(tmp_path / "rebalance.journal")
        kill_child_after_migration(journal, kill_after)

        # The journal the corpse left behind routes with a *pre-crash*
        # table: every commit carries the routing snapshot.  (For
        # kill_after=1 the crash precedes the very first commit — the
        # migration fires earlier in the same round — so the journal is
        # empty and the resume degenerates to a fresh run; that is the
        # harshest version of "the journal knows nothing about it".)
        entries = ResultJournal.read(journal)
        commits = [e for e in entries if e["kind"] == "commit"]
        if kill_after > 1:
            assert commits, "child died before its first commit"
        assert all(e.get("routing") is not None for e in commits)

        expected = serial_rows(SS_SHARDED, subset_sum_library(relax_factor=10.0))
        fresh = ShardedGigascope(
            shards=2,
            supervise=True,
            supervision=SupervisionPolicy(max_restarts=2),
            rebalance=policy(),
        )
        fresh.register_stream(TCP_SCHEMA)
        fresh.use_stateful_library(subset_sum_library(relax_factor=10.0))
        handle = fresh.add_query(SS_SHARDED, name="q")
        consumed = DurableRunner(
            fresh, journal, batch_size=64, commit_interval=2
        ).resume(iter(feed()))
        assert consumed == len(feed())
        assert canonical_rows(handle.results) == expected
        assert fresh.run_report()["rebalance"]["plans"] >= kill_after
