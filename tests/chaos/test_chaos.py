"""Chaos tests: kill the WHOLE pipeline process and resume for real.

Unlike tests/dsms/test_durability.py (which simulates the crash by
raising from the commit hook), these tests fork a child Python process
that runs a durable query and hard-exits (``os._exit``) right after its
Nth journal commit — no atexit, no multiprocessing cleanup, no flush
beyond the journal's own fsync.  The parent then resumes from the
journal the corpse left behind and asserts byte-identical results
against an unfaulted in-process run.

Every subprocess child runs in its own process group so any shard
workers orphaned by the kill are reaped afterwards with ``killpg``.

Run with ``pytest -m chaos`` (or ``scripts/check.sh --chaos``); the
tier-1 suite deselects the ``chaos`` marker.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.dsms.durability import DurableRunner, ResultJournal
from repro.dsms.resilience import SupervisionPolicy
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope
from repro.streams.persistence import save_trace
from repro.streams.schema import TCP_SCHEMA
from repro.streams.sources import (
    EAGER_RETRY,
    QuarantineStream,
    ResilientSource,
    RetryPolicy,
    replayable,
    resilient_trace_source,
)
from repro.streams.traces import TraceConfig, research_center_feed
from repro.testing.faults import FaultySource, SourceFault
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

pytestmark = pytest.mark.chaos

SS_TEXT = SUBSET_SUM_QUERY.format(window=5, target=200)
SS_SHARDED = SS_TEXT.replace(
    "GROUP BY time/5 as tb, srcIP, destIP, uts",
    "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
)

# The child re-synthesises the same deterministic feed, so crash and
# resume agree on the input without shipping records across processes.
FEED_ARGS = "duration_seconds=15, rate_scale=0.01, seed=3"

_CHILD = textwrap.dedent(
    """
    import sys
    from repro.dsms.durability import DurableRunner
    from repro.dsms.resilience import SupervisionPolicy
    from repro.dsms.runtime import Gigascope
    from repro.dsms.sharded import ShardedGigascope
    from repro.streams.schema import TCP_SCHEMA
    from repro.streams.traces import TraceConfig, research_center_feed
    from repro.testing.faults import exit_after_commits
    from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

    mode, journal, kill_at = sys.argv[1], sys.argv[2], int(sys.argv[3])
    sql = SUBSET_SUM_QUERY.format(window=5, target=200)
    if mode == "supervised":
        sql = sql.replace(
            "GROUP BY time/5 as tb, srcIP, destIP, uts",
            "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
        )
        gs = ShardedGigascope(
            shards=2,
            processes=True,
            supervise=True,
            supervision=SupervisionPolicy(max_restarts=2),
        )
        batch = 128
    else:
        gs = Gigascope()
        batch = 64
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
    gs.add_query(sql, name="q")
    runner = DurableRunner(
        gs,
        journal,
        batch_size=batch,
        commit_interval=2,
        on_commit=exit_after_commits(kill_at, exit_code=86),
    )
    feed = research_center_feed(TraceConfig({feed_args}))
    runner.run(iter(feed))
    # Reaching the end means the kill point was never hit.
    sys.exit(3)
    """
).replace("{feed_args}", FEED_ARGS)


def feed():
    return list(research_center_feed(TraceConfig(duration_seconds=15, rate_scale=0.01, seed=3)))


def build(mode):
    if mode == "supervised":
        gs = ShardedGigascope(
            shards=2,
            processes=True,
            supervise=True,
            supervision=SupervisionPolicy(max_restarts=2),
        )
    else:
        gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
    gs.add_query(SS_SHARDED if mode == "supervised" else SS_TEXT, name="q")
    return gs


def rows_of(gs):
    return [r.values for r in gs.query("q").results]


def kill_child_at_commit(mode, journal_path, kill_at):
    """Run the durable query in a child process that dies after commit N.

    Output goes to a file, not a pipe: shard workers orphaned by the
    hard exit inherit the child's stderr, so reading a pipe to EOF
    would block on processes that outlive the child.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    err_path = journal_path + ".stderr"
    with open(err_path, "wb") as err:
        proc = subprocess.Popen(
            [sys.executable, "-c", _CHILD, mode, journal_path, str(kill_at)],
            env=env,
            start_new_session=True,
            stdout=subprocess.DEVNULL,
            stderr=err,
        )
        try:
            proc.wait(timeout=90)
        finally:
            # Reap any shard workers orphaned by the hard exit.
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    with open(err_path, "rb") as fh:
        stderr = fh.read()
    assert proc.returncode == 86, (
        f"child should die at commit {kill_at}, got rc={proc.returncode}:"
        f" {stderr.decode(errors='replace')[-500:]}"
    )


class TestKillParentAtWindowN:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("kill_at", [1, 2, 3])
    def test_serial_kill_and_resume_is_byte_identical(self, tmp_path, kill_at):
        journal = str(tmp_path / "serial.journal")
        kill_child_at_commit("serial", journal, kill_at)
        assert len(ResultJournal.read(journal)) == kill_at

        ref = build("serial")
        ref.run(iter(feed()))
        fresh = build("serial")
        consumed = DurableRunner(
            fresh, journal, batch_size=64, commit_interval=2
        ).resume(iter(feed()))
        assert consumed == len(feed())
        assert rows_of(fresh) == rows_of(ref)
        assert fresh.metrics.comparable_items() == ref.metrics.comparable_items()

    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("kill_at", [1, 2])
    def test_supervised_kill_and_resume_is_byte_identical(self, tmp_path, kill_at):
        journal = str(tmp_path / "supervised.journal")
        kill_child_at_commit("supervised", journal, kill_at)
        assert len(ResultJournal.read(journal)) == kill_at

        ref = build("supervised")
        ref.run(iter(feed()), batch_size=128)
        fresh = build("supervised")
        consumed = DurableRunner(
            fresh, journal, batch_size=128, commit_interval=2
        ).resume(iter(feed()))
        assert consumed == len(feed())
        assert sorted(rows_of(fresh)) == sorted(rows_of(ref))
        assert fresh.metrics.comparable_items(
            exclude_prefixes=("supervisor_",)
        ) == ref.metrics.comparable_items(exclude_prefixes=("supervisor_",))


class TestCorruptTraceTail:
    @pytest.mark.timeout(120)
    def test_torn_trace_runs_to_completion_and_matches_clean_prefix(self, tmp_path):
        recs = feed()
        path = str(tmp_path / "trace.bin")
        save_trace(iter(recs), path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 9)  # tear the last record mid-write

        # Reference: a clean run over every record that survived whole.
        ref = build("serial")
        ref.run(iter(recs[:-1]))

        q = QuarantineStream()
        src = resilient_trace_source(
            path, RetryPolicy(max_retries=2), quarantine=q
        )
        gs = build("serial")
        gs.run(iter(list(src)))
        assert rows_of(gs) == rows_of(ref)
        assert q.total == 1
        assert "torn tail" in q.entries[0].reason


class TestStalledSource:
    @pytest.mark.timeout(120)
    def test_stalled_source_recovers_and_matches_unfaulted_run(self):
        recs = feed()
        ref = build("serial")
        ref.run(iter(recs))

        faulty = FaultySource(
            recs,
            [
                SourceFault("stall", 7, seconds=1.0),
                SourceFault("fail", 101),
            ],
        )
        policy = RetryPolicy(
            max_retries=4,
            backoff_base=0.0,
            backoff_cap=0.0,
            jitter=0.0,
            read_timeout=0.25,
        )
        src = ResilientSource(faulty, policy, name="chaos")
        gs = build("serial")
        gs.run(iter(list(src)))
        assert rows_of(gs) == rows_of(ref)
        assert src.stats.stalls >= 1
        assert src.stats.reconnects >= 2  # one stall watchdog + one hard fail

    @pytest.mark.timeout(120)
    def test_damaged_stream_never_aborts_the_query(self):
        recs = feed()
        faulty = FaultySource(
            recs,
            [
                SourceFault("corrupt", 11),
                SourceFault("corrupt", 53),
                SourceFault("drop", 200),
                SourceFault("duplicate", 300),
            ],
        )
        q = QuarantineStream()
        src = ResilientSource(
            faulty, EAGER_RETRY, schema=recs[0].schema, quarantine=q, name="dmg"
        )
        gs = build("serial")
        gs.run(iter(list(src)))  # must not raise
        assert q.total == 2
        assert len(rows_of(gs)) > 0
