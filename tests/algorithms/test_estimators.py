"""Estimator statistics kit and the analytic variance results."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.algorithms.estimators import (
    EstimatorReport,
    bernoulli_variance,
    replicate,
    subset_sum_variance_gap,
    threshold_variance_bound,
)


class TestReport:
    def test_bias_and_error(self):
        report = EstimatorReport(truth=100.0, estimates=(90.0, 110.0))
        assert report.mean == 100.0
        assert report.bias == 0.0
        assert report.relative_bias == 0.0
        assert report.std_error > 0

    def test_relative_rmse(self):
        report = EstimatorReport(truth=100.0, estimates=(100.0, 100.0))
        assert report.relative_rmse == 0.0

    def test_zero_truth_rejected(self):
        report = EstimatorReport(truth=0.0, estimates=(1.0,))
        with pytest.raises(ReproError):
            report.relative_bias
        with pytest.raises(ReproError):
            report.relative_rmse

    def test_single_estimate_std_error_zero(self):
        assert EstimatorReport(truth=1.0, estimates=(1.0,)).std_error == 0.0

    def test_str(self):
        text = str(EstimatorReport(truth=100.0, estimates=(90.0, 110.0)))
        assert "rel.bias" in text


class TestReplicate:
    def test_runs_per_seed(self):
        report = replicate(lambda seed: float(seed), truth=2.0, replications=5)
        assert report.estimates == (0.0, 1.0, 2.0, 3.0, 4.0)

    def test_invalid_replications(self):
        with pytest.raises(ReproError):
            replicate(lambda seed: 0.0, truth=1.0, replications=0)


class TestAnalyticVariances:
    def test_threshold_variance_zero_for_all_big(self):
        assert threshold_variance_bound([100, 200], z=50) == 0.0

    def test_threshold_variance_formula(self):
        # One small item: Var = w (z - w) = 10 * 90.
        assert threshold_variance_bound([10.0], z=100.0) == 900.0

    def test_threshold_variance_matches_empirical(self):
        # Empirical variance of the randomized threshold estimator should
        # match sum w*max(0, z-w) closely.
        rng_data = random.Random(5)
        weights = [rng_data.randint(40, 1500) for _ in range(2000)]
        z = 5000.0
        analytic = threshold_variance_bound(weights, z)

        def one_run(seed):
            rng = random.Random(seed)
            total = 0.0
            for w in weights:
                if rng.random() < min(1.0, w / z):
                    total += max(w, z)
            return total

        estimates = [one_run(s) for s in range(200)]
        import statistics

        empirical = statistics.variance(estimates)
        assert empirical == pytest.approx(analytic, rel=0.3)

    def test_bernoulli_variance_formula(self):
        # Var = sum w^2 (1-p)/p.
        assert bernoulli_variance([2.0], p=0.5) == 4.0

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            threshold_variance_bound([1.0], z=0)
        with pytest.raises(ReproError):
            bernoulli_variance([1.0], p=0)
        with pytest.raises(ReproError):
            subset_sum_variance_gap([], 1)
        with pytest.raises(ReproError):
            subset_sum_variance_gap([1.0], 2)


class TestVarianceGap:
    def test_gap_large_on_heavy_tails(self):
        rng = random.Random(9)
        weights = [rng.paretovariate(1.2) * 100 for _ in range(5000)]
        gap = subset_sum_variance_gap(weights, sample_size=100)
        assert gap > 5.0, "heavy tails must favour threshold sampling"

    def test_gap_modest_on_uniform_weights(self):
        weights = [100.0] * 5000
        gap = subset_sum_variance_gap(weights, sample_size=100)
        assert gap == pytest.approx(1.0, rel=0.2)

    def test_full_sample_gap_is_one(self):
        assert subset_sum_variance_gap([1.0, 2.0], 2) == 1.0

    @given(
        st.lists(st.floats(1, 10_000), min_size=10, max_size=500),
        st.integers(1, 9),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_gap_at_least_about_one(self, weights, k):
        # Threshold sampling is never much worse than uniform at matched
        # expected sample size.
        gap = subset_sum_variance_gap(weights, sample_size=k)
        assert gap > 0.5
