"""Integrated flow aggregation + sampling (paper §8) and the naive baseline."""

import pytest

from repro.errors import ReproError
from repro.streams.traces import TraceConfig, ddos_feed
from repro.algorithms.flow_sampling import (
    NaiveFlowAggregator,
    SampledFlowAggregator,
    flow_key,
)


def attack_trace():
    config = TraceConfig(duration_seconds=60, rate_scale=0.02, seed=11)
    return list(ddos_feed(config, attack_start=10, attack_duration=40))


def calm_trace():
    config = TraceConfig(duration_seconds=30, rate_scale=0.02, seed=12)
    return list(ddos_feed(config, attack_start=29, attack_duration=1))


class TestNaive:
    def test_counts_flows_exactly(self):
        trace = calm_trace()
        aggregator = NaiveFlowAggregator()
        for record in trace:
            aggregator.offer(record)
        flows = aggregator.close_window()
        assert len(flows) == len({flow_key(r) for r in trace})
        assert sum(f.bytes for f in flows) == sum(r["len"] for r in trace)

    def test_memory_exhaustion_during_attack(self):
        aggregator = NaiveFlowAggregator(memory_limit=2000)
        with pytest.raises(ReproError, match="exhausted"):
            for record in attack_trace():
                aggregator.offer(record)

    def test_peak_flow_tracking(self):
        aggregator = NaiveFlowAggregator()
        for record in calm_trace():
            aggregator.offer(record)
        assert aggregator.peak_flows == len(aggregator.flows)

    def test_close_window_resets(self):
        aggregator = NaiveFlowAggregator()
        for record in calm_trace():
            aggregator.offer(record)
        aggregator.close_window()
        assert aggregator.flows == {}


class TestSampled:
    def test_memory_bounded_under_attack(self):
        sampler = SampledFlowAggregator(target=200, gamma=2.0)
        for record in attack_trace():
            sampler.offer(record)
            assert sampler.live_flows <= 2 * 200 + 1
        assert sampler.peak_flows <= 2 * 200 + 1

    def test_cleanings_triggered_by_attack(self):
        sampler = SampledFlowAggregator(target=200)
        for record in attack_trace():
            sampler.offer(record)
        assert sampler.cleaning_phases >= 1

    def test_byte_estimate_accurate_under_attack(self):
        trace = attack_trace()
        sampler = SampledFlowAggregator(target=400, gamma=2.0)
        for record in trace:
            sampler.offer(record)
        flows = sampler.close_window()
        estimate = sampler.estimated_total_bytes(flows)
        actual = sum(r["len"] for r in trace)
        assert estimate == pytest.approx(actual, rel=0.15)

    def test_final_sample_capped_at_target(self):
        sampler = SampledFlowAggregator(target=100)
        for record in attack_trace():
            sampler.offer(record)
        flows = sampler.close_window()
        assert len(flows) <= 100

    def test_elephants_survive(self):
        # The largest flows must be in the sample: threshold sampling keeps
        # every flow whose weight exceeds z.
        trace = attack_trace()
        truth = {}
        for record in trace:
            truth[flow_key(record)] = truth.get(flow_key(record), 0) + record["len"]
        top = sorted(truth.values(), reverse=True)[:3]
        sampler = SampledFlowAggregator(target=300)
        for record in trace:
            sampler.offer(record)
        flows = sampler.close_window()
        sampled_bytes = sorted((f.bytes for f in flows), reverse=True)
        # The very largest flow should be present with (nearly) full volume.
        # Evicted-then-readmitted flows may lose early packets, so compare
        # against a 0.7 fraction of the true elephant sizes.
        assert sampled_bytes[0] >= 0.7 * top[0]

    def test_no_thinning_before_first_cleaning(self):
        sampler = SampledFlowAggregator(target=10_000)
        trace = calm_trace()
        for record in trace:
            sampler.offer(record)
        # Table never exceeded gamma*target: every flow exact.
        flows = sampler.close_window()
        assert sum(f.bytes for f in flows) == sum(r["len"] for r in trace)
        assert sampler.cleaning_phases == 0

    def test_window_reset_carries_relaxed_threshold(self):
        sampler = SampledFlowAggregator(target=50, relax_factor=10.0)
        for record in attack_trace():
            sampler.offer(record)
        z_before = sampler.z
        sampler.close_window()
        assert sampler.z == pytest.approx(z_before / 10.0) or sampler.z < z_before

    def test_validation(self):
        with pytest.raises(ReproError):
            SampledFlowAggregator(target=0)
        with pytest.raises(ReproError):
            SampledFlowAggregator(target=10, gamma=1.0)
        with pytest.raises(ReproError):
            SampledFlowAggregator(target=10, relax_factor=0.9)
