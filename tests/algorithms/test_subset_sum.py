"""Subset-sum sampling: basic, adjustment rules, dynamic sampler."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.algorithms.subset_sum import (
    DynamicSubsetSumSampler,
    SampledTuple,
    ThresholdSampler,
    adjust_threshold,
    estimate_sum,
    solve_threshold,
)


def lengths(n=2000, seed=3):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        u = rng.random()
        if u < 0.5:
            out.append(rng.randint(40, 80))
        elif u < 0.7:
            out.append(rng.randint(300, 700))
        else:
            out.append(rng.randint(1300, 1500))
    return out


class TestThresholdSampler:
    def test_large_tuples_always_sampled(self):
        sampler = ThresholdSampler(z=100)
        assert all(sampler.offer(x) for x in (101, 500, 10_000))

    def test_credit_counter_emits_one_per_z_mass(self):
        sampler = ThresholdSampler(z=1000)
        sampled = sum(1 for _ in range(100) if sampler.offer(100))
        # 100 tuples x 100 bytes = 10,000 mass -> ~10 samples
        assert sampled in (9, 10)

    def test_estimate_conserves_total(self):
        # The credit variant guarantees: estimate <= actual < estimate + z.
        z = 5000.0
        sampler = ThresholdSampler(z)
        data = lengths()
        estimate = sum(
            sampler.adjusted_weight(x) for x in data if sampler.offer(x)
        )
        actual = sum(data)
        assert estimate <= actual < estimate + z

    def test_adjusted_weight(self):
        sampler = ThresholdSampler(z=100)
        assert sampler.adjusted_weight(50) == 100
        assert sampler.adjusted_weight(500) == 500

    def test_negative_measure_rejected(self):
        with pytest.raises(ReproError):
            ThresholdSampler(10).offer(-1)

    def test_invalid_z(self):
        with pytest.raises(ReproError):
            ThresholdSampler(0)

    @given(st.lists(st.floats(0, 10_000), max_size=500),
           st.floats(1, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_property_conservation(self, data, z):
        sampler = ThresholdSampler(z)
        estimate = sum(
            sampler.adjusted_weight(x) for x in data if sampler.offer(x)
        )
        actual = sum(data)
        assert estimate <= actual + 1e-6
        assert actual < estimate + z + 1e-6


class TestAdjustThreshold:
    def test_undersampled_scales_down(self):
        assert adjust_threshold(100.0, live=50, target=100, big=0) == 50.0

    def test_empty_halves(self):
        assert adjust_threshold(100.0, live=0, target=100, big=0) == 50.0

    def test_oversampled_scales_up(self):
        # (live - big) / (target - big) = (200-0)/(100-0) = 2
        assert adjust_threshold(100.0, live=200, target=100, big=0) == 200.0

    def test_never_decreases_when_oversampled(self):
        assert adjust_threshold(100.0, live=100, target=100, big=0) == 100.0

    def test_big_fallback_when_b_exceeds_target(self):
        # B >= M: the closed form's denominator vanishes; proportional rule.
        assert adjust_threshold(100.0, live=200, target=100, big=150) == 200.0

    def test_validation(self):
        with pytest.raises(ReproError):
            adjust_threshold(0.0, 1, 1, 0)
        with pytest.raises(ReproError):
            adjust_threshold(1.0, 1, 0, 0)
        with pytest.raises(ReproError):
            adjust_threshold(1.0, 1, 1, 2)  # big > live


class TestSolveThreshold:
    def expected_survivors(self, weights, z):
        big = sum(1 for w in weights if w > z)
        small = sum(w for w in weights if w <= z)
        return big + small / z

    def test_no_adjustment_needed_when_under_target(self):
        assert solve_threshold([1.0, 2.0], target=5) == 0.0

    def test_hits_target_exactly_mixed(self):
        weights = [10.0] * 50 + [1000.0] * 5
        z = solve_threshold(weights, target=20)
        assert self.expected_survivors(weights, z) == pytest.approx(20, rel=1e-9)

    def test_all_small_case(self):
        weights = [10.0] * 100
        z = solve_threshold(weights, target=10)
        assert z == pytest.approx(100.0)

    def test_capped_sizes_no_overshoot(self):
        # The pathological case that breaks the aggressive rule: many
        # samples just under the old threshold.
        weights = [1400.0] * 99 + [1500.0] * 102
        z = solve_threshold(weights, target=100)
        assert self.expected_survivors(weights, z) == pytest.approx(100, rel=0.05)
        assert z < 10_000  # the aggressive rule would produce ~100x more

    def test_respects_z_min(self):
        assert solve_threshold([1.0] * 10, target=2, z_min=100.0) == 100.0

    def test_invalid_target(self):
        with pytest.raises(ReproError):
            solve_threshold([1.0], 0)

    @given(
        st.lists(st.floats(1, 10_000), min_size=1, max_size=300),
        st.integers(1, 50),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_expected_survivors_near_target(self, weights, target):
        z = solve_threshold(weights, target)
        if len(weights) <= target:
            assert z == 0.0
            return
        assert z > 0
        survivors = self.expected_survivors(weights, z)
        # Ties at the breakpoint can undershoot slightly; never overshoot.
        assert survivors <= target + 1e-6
        assert survivors >= min(target, len(weights)) * 0.5


class TestDynamicSampler:
    def run_windows(self, sampler, window_data):
        reports = []
        for data in window_data:
            for x in data:
                sampler.offer(x)
            reports.append(sampler.close_window())
        return reports

    def test_sample_size_near_target_on_steady_load(self):
        sampler = DynamicSubsetSumSampler(target=100, relax_factor=10.0)
        reports = self.run_windows(sampler, [lengths(seed=s) for s in range(4)])
        for report in reports[1:]:
            assert len(report.samples) <= 100
            assert len(report.samples) >= 80

    def test_relaxed_estimates_accurate(self):
        sampler = DynamicSubsetSumSampler(target=100, relax_factor=10.0)
        window_data = [lengths(seed=s) for s in range(4)]
        reports = self.run_windows(sampler, window_data)
        for data, report in list(zip(window_data, reports))[1:]:
            assert report.estimated_sum == pytest.approx(sum(data), rel=0.1)

    def test_nonrelaxed_underestimates_after_load_drop(self):
        sampler = DynamicSubsetSumSampler(target=100, relax_factor=1.0)
        heavy = lengths(n=20_000, seed=1)
        light = lengths(n=1000, seed=2)
        self.run_windows(sampler, [heavy])
        report = self.run_windows(sampler, [light])[0]
        # Under-collection plus the end-of-window threshold re-estimation
        # deflates the estimate (paper Fig 2 behaviour).
        assert len(report.samples) < 60
        assert report.estimated_sum < 0.7 * sum(light)

    def test_relaxed_recovers_from_load_drop(self):
        # f=10 absorbs load drops up to 10x; the paper's feed varies ~3x.
        sampler = DynamicSubsetSumSampler(target=100, relax_factor=10.0)
        heavy = lengths(n=20_000, seed=1)
        light = lengths(n=4000, seed=2)
        self.run_windows(sampler, [heavy])
        report = self.run_windows(sampler, [light])[0]
        assert report.estimated_sum == pytest.approx(sum(light), rel=0.15)

    def test_relaxed_uses_more_cleanings(self):
        window_data = [lengths(seed=s) for s in range(4)]
        relaxed = DynamicSubsetSumSampler(target=100, relax_factor=10.0)
        nonrelaxed = DynamicSubsetSumSampler(target=100, relax_factor=1.0)
        relaxed_reports = self.run_windows(relaxed, window_data)
        nonrelaxed_reports = self.run_windows(nonrelaxed, window_data)
        relaxed_cleanings = sum(r.cleaning_phases for r in relaxed_reports[1:])
        nonrelaxed_cleanings = sum(r.cleaning_phases for r in nonrelaxed_reports[1:])
        assert relaxed_cleanings > nonrelaxed_cleanings

    def test_live_sample_bounded_by_gamma(self):
        sampler = DynamicSubsetSumSampler(target=50, gamma=2.0)
        for x in lengths(n=10_000):
            sampler.offer(x)
            assert sampler.live_samples <= 2 * 50 + 1

    def test_adjust_at_close_ablation_removes_bias(self):
        heavy = lengths(n=20_000, seed=1)
        light = lengths(n=1000, seed=2)
        sampler = DynamicSubsetSumSampler(
            target=100, relax_factor=1.0, adjust_at_close=False
        )
        self.run_windows(sampler, [heavy])
        report = self.run_windows(sampler, [light])[0]
        # Without the end-of-window re-estimation the credit-counter
        # estimator is conservative but tight: within one z of the truth.
        assert report.estimated_sum <= sum(light)
        assert report.estimated_sum > sum(light) - report.z_final - 1

    def test_aggressive_rule_selectable(self):
        sampler = DynamicSubsetSumSampler(target=50, adjustment="aggressive")
        for x in lengths(n=5000):
            sampler.offer(x)
        assert sampler.cleaning_phases >= 1

    def test_invalid_configs(self):
        with pytest.raises(ReproError):
            DynamicSubsetSumSampler(target=0)
        with pytest.raises(ReproError):
            DynamicSubsetSumSampler(target=10, gamma=1.0)
        with pytest.raises(ReproError):
            DynamicSubsetSumSampler(target=10, relax_factor=0.5)
        with pytest.raises(ReproError):
            DynamicSubsetSumSampler(target=10, z_init=0)
        with pytest.raises(ReproError):
            DynamicSubsetSumSampler(target=10, adjustment="magic")

    def test_negative_measure_rejected(self):
        with pytest.raises(ReproError):
            DynamicSubsetSumSampler(target=10).offer(-5)


class TestEstimateSum:
    def test_with_predicate(self):
        samples = [
            SampledTuple(key=0, measure=50, floor=100),
            SampledTuple(key=1, measure=500, floor=100),
        ]
        total = estimate_sum(samples, z_final=100)
        assert total == 100 + 500
        only_big = estimate_sum(samples, z_final=100,
                                predicate=lambda s: s.measure > 100)
        assert only_big == 500
