"""Greenwald–Khanna quantile summary."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.algorithms.quantiles import GKQuantileSummary


def rank_error(data, value, quantile):
    """|rank(value) - q*n| normalised by n, using the closest true rank."""
    ordered = sorted(data)
    lo = 0
    hi = len(ordered)
    # all ranks at which `value` could sit
    import bisect

    left = bisect.bisect_left(ordered, value)
    right = bisect.bisect_right(ordered, value)
    target = quantile * len(ordered)
    if left <= target <= right:
        return 0.0
    return min(abs(left - target), abs(right - target)) / len(ordered)


class TestAccuracy:
    @pytest.mark.parametrize("quantile", [0.01, 0.25, 0.5, 0.75, 0.99])
    def test_uniform_data(self, quantile):
        epsilon = 0.01
        summary = GKQuantileSummary(epsilon)
        rng = random.Random(5)
        data = [rng.random() for _ in range(20_000)]
        summary.extend(data)
        value = summary.query(quantile)
        assert rank_error(data, value, quantile) <= 2 * epsilon

    def test_skewed_data(self):
        epsilon = 0.02
        summary = GKQuantileSummary(epsilon)
        rng = random.Random(6)
        data = [rng.paretovariate(1.5) for _ in range(10_000)]
        summary.extend(data)
        for quantile in (0.5, 0.9, 0.99):
            value = summary.query(quantile)
            assert rank_error(data, value, quantile) <= 2 * epsilon

    def test_sorted_input(self):
        summary = GKQuantileSummary(0.01)
        data = list(range(10_000))
        summary.extend(data)
        assert abs(summary.query(0.5) - 5000) <= 300

    def test_reverse_sorted_input(self):
        summary = GKQuantileSummary(0.01)
        data = list(range(10_000, 0, -1))
        summary.extend(data)
        assert abs(summary.query(0.5) - 5000) <= 300

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=3000))
    @settings(max_examples=30, deadline=None)
    def test_property_rank_guarantee(self, data):
        epsilon = 0.05
        summary = GKQuantileSummary(epsilon)
        summary.extend(data)
        for quantile in (0.1, 0.5, 0.9):
            value = summary.query(quantile)
            assert rank_error(data, value, quantile) <= 2 * epsilon + 1 / len(data)


class TestSpace:
    def test_sublinear_space(self):
        summary = GKQuantileSummary(0.01)
        summary.extend(range(50_000))
        assert summary.entry_count < 5000  # far below n

    def test_space_within_bound_factor(self):
        summary = GKQuantileSummary(0.02)
        rng = random.Random(7)
        summary.extend(rng.random() for _ in range(30_000))
        assert summary.entry_count <= 4 * summary.space_bound()

    def test_count_tracks_inserts(self):
        summary = GKQuantileSummary(0.1)
        summary.extend(range(123))
        assert summary.count == 123


class TestValidation:
    def test_invalid_epsilon(self):
        for eps in (0, 1, -1):
            with pytest.raises(ReproError):
                GKQuantileSummary(eps)

    def test_empty_query_rejected(self):
        with pytest.raises(ReproError):
            GKQuantileSummary(0.1).query(0.5)

    def test_quantile_out_of_range(self):
        summary = GKQuantileSummary(0.1)
        summary.offer(1.0)
        with pytest.raises(ReproError):
            summary.query(1.5)

    def test_single_element(self):
        summary = GKQuantileSummary(0.1)
        summary.offer(42.0)
        assert summary.query(0.5) == 42.0
