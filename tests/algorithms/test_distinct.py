"""Gibbons distinct sampling: standalone class and operator query."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.algorithms.distinct import DistinctSampler
from repro.algorithms.bindings import (
    DISTINCT_SAMPLING_QUERY,
    distinct_sampling_library,
)
from repro.dsms.runtime import Gigascope
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed


class TestStandalone:
    def test_capacity_bound(self):
        sampler = DistinctSampler(capacity=50)
        for value in range(10_000):
            sampler.offer(value)
            assert sampler.sample_size <= 50

    def test_level_advances_under_pressure(self):
        sampler = DistinctSampler(capacity=50)
        sampler.extend(range(10_000))
        assert sampler.level >= 6  # 10000/50 = 200 -> level ~ 8

    def test_no_thinning_below_capacity(self):
        sampler = DistinctSampler(capacity=100)
        sampler.extend(range(60))
        assert sampler.level == 0
        assert sampler.sample_size == 60

    def test_duplicates_do_not_grow_sample(self):
        sampler = DistinctSampler(capacity=100)
        sampler.extend([7] * 1000)
        assert sampler.sample_size == 1
        assert sampler.multiplicity(7) == 1000

    def test_distinct_estimate_accuracy(self):
        sampler = DistinctSampler(capacity=256)
        true = 20_000
        sampler.extend(range(true))
        assert sampler.distinct_estimate() == pytest.approx(true, rel=0.25)

    def test_distinct_estimate_exact_below_capacity(self):
        sampler = DistinctSampler(capacity=100)
        sampler.extend(range(42))
        assert sampler.distinct_estimate() == 42

    def test_rarity(self):
        # 1000 values appear once, 1000 appear three times.
        stream = list(range(2000)) + list(range(1000, 2000)) * 2
        sampler = DistinctSampler(capacity=300)
        sampler.extend(stream)
        assert sampler.rarity_estimate() == pytest.approx(0.5, abs=0.12)

    def test_rarity_empty(self):
        assert DistinctSampler(capacity=5).rarity_estimate() == 0.0

    def test_selectivity_estimate(self):
        sampler = DistinctSampler(capacity=400)
        sampler.extend(range(10_000))
        even_share = sampler.selectivity_estimate(lambda v: v % 2 == 0)
        assert even_share == pytest.approx(0.5, abs=0.1)

    def test_deterministic_for_seed(self):
        a = DistinctSampler(capacity=64, seed=9)
        b = DistinctSampler(capacity=64, seed=9)
        a.extend(range(5000))
        b.extend(range(5000))
        assert sorted(a.sample()) == sorted(b.sample())

    def test_sample_is_hash_prefix(self):
        # The retained set must be exactly {v : h(v) < 2^-level}: a fixed
        # random subset of the distinct values, independent of arrival.
        sampler = DistinctSampler(capacity=64)
        sampler.extend(range(5000))
        threshold = sampler.threshold
        for value in sampler.sample():
            assert sampler._hash(value) < threshold
        survivors = {v for v in range(5000) if sampler._hash(v) < threshold}
        assert set(sampler.sample()) == survivors

    def test_invalid_capacity(self):
        with pytest.raises(ReproError):
            DistinctSampler(capacity=0)

    @given(st.lists(st.integers(0, 10**6), max_size=2000))
    @settings(max_examples=30, deadline=None)
    def test_property_bound_and_membership(self, stream):
        sampler = DistinctSampler(capacity=32)
        sampler.extend(stream)
        assert sampler.sample_size <= 32
        assert set(sampler.sample()) <= set(stream)


class TestOperatorQuery:
    def run_query(self, capacity=64, duration=30, scale=0.05, seed=21):
        config = TraceConfig(duration_seconds=duration, rate_scale=scale,
                             seed=seed)
        trace = list(research_center_feed(config))
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(distinct_sampling_library())
        handle = gs.add_query(
            DISTINCT_SAMPLING_QUERY.format(window=duration, capacity=capacity),
            name="ds",
        )
        gs.run(iter(trace))
        return trace, handle

    def test_sample_bounded_by_capacity(self):
        _, handle = self.run_query(capacity=64)
        assert 0 < len(handle.results) <= 64

    def test_matches_standalone(self):
        trace, handle = self.run_query(capacity=64)
        standalone = DistinctSampler(capacity=64)
        standalone.extend(r["srcIP"] for r in trace)
        assert {row["srcIP"] for row in handle.results} == set(standalone.sample())

    def test_multiplicities_exact(self):
        trace, handle = self.run_query(capacity=64)
        truth = Counter(r["srcIP"] for r in trace)
        for row in handle.results:
            assert row[2] == truth[row["srcIP"]]

    def test_distinct_estimate_from_query(self):
        trace, handle = self.run_query(capacity=64)
        true_distinct = len({r["srcIP"] for r in trace})
        level = handle.results[0][3]
        estimate = len(handle.results) * 2 ** level
        assert estimate == pytest.approx(true_distinct, rel=0.5)
