"""Min-hash signatures and KMV sketches."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.algorithms.minhash import KMVSketch, MinHashSignature, estimate_resemblance


def overlapping_sets(overlap, size=2000, seed=1):
    rng = random.Random(seed)
    shared = set(rng.sample(range(10**6), int(size * overlap)))
    a = shared | set(rng.sample(range(10**6, 2 * 10**6), size - len(shared)))
    b = shared | set(rng.sample(range(2 * 10**6, 3 * 10**6), size - len(shared)))
    return a, b


def jaccard(a, b):
    return len(a & b) / len(a | b)


class TestSignature:
    def test_deterministic(self):
        a = MinHashSignature(50)
        b = MinHashSignature(50)
        a.extend(range(100))
        b.extend(range(100))
        assert a.signature() == b.signature()

    def test_order_insensitive(self):
        a = MinHashSignature(50)
        b = MinHashSignature(50)
        a.extend(range(100))
        b.extend(reversed(range(100)))
        assert a.signature() == b.signature()

    def test_identical_sets_have_resemblance_one(self):
        a = MinHashSignature(64)
        b = MinHashSignature(64)
        for sig in (a, b):
            sig.extend(range(500))
        assert a.resemblance(b) == 1.0

    def test_disjoint_sets_have_low_resemblance(self):
        a = MinHashSignature(64)
        b = MinHashSignature(64)
        a.extend(range(0, 1000))
        b.extend(range(10_000, 11_000))
        assert a.resemblance(b) < 0.1

    @pytest.mark.parametrize("overlap", [0.2, 0.5, 0.8])
    def test_estimates_jaccard(self, overlap):
        a_set, b_set = overlapping_sets(overlap)
        a = MinHashSignature(200)
        b = MinHashSignature(200)
        a.extend(a_set)
        b.extend(b_set)
        true = jaccard(a_set, b_set)
        assert abs(a.resemblance(b) - true) < 0.1

    def test_incompatible_signatures_rejected(self):
        with pytest.raises(ReproError):
            MinHashSignature(10).resemblance(MinHashSignature(20))
        with pytest.raises(ReproError):
            MinHashSignature(10, base_seed=0).resemblance(
                MinHashSignature(10, base_seed=5)
            )

    def test_module_level_helper(self):
        a = MinHashSignature(16)
        b = MinHashSignature(16)
        a.extend(range(10))
        b.extend(range(10))
        assert estimate_resemblance(a, b) == 1.0

    def test_invalid_n(self):
        with pytest.raises(ReproError):
            MinHashSignature(0)


class TestKmv:
    def test_keeps_k_smallest_distinct(self):
        from repro.dsms.functions import hash32

        sketch = KMVSketch(k=10)
        sketch.extend(range(1000))
        expected = sorted(hash32(v) for v in range(1000))[:10]
        assert list(sketch.values) == expected

    def test_duplicates_do_not_distort(self):
        a = KMVSketch(k=20)
        b = KMVSketch(k=20)
        a.extend(list(range(100)) * 5)
        b.extend(range(100))
        assert a.values == b.values

    def test_kth_value_none_until_full(self):
        sketch = KMVSketch(k=10)
        sketch.extend(range(5))
        assert sketch.kth_value is None
        sketch.extend(range(5, 15))
        assert sketch.kth_value is not None

    def test_distinct_estimate_exact_when_under_k(self):
        sketch = KMVSketch(k=100)
        sketch.extend(range(37))
        assert sketch.distinct_estimate() == 37

    @pytest.mark.parametrize("true_distinct", [1000, 10_000])
    def test_distinct_estimate_accuracy(self, true_distinct):
        sketch = KMVSketch(k=256)
        sketch.extend(range(true_distinct))
        estimate = sketch.distinct_estimate()
        assert abs(estimate - true_distinct) / true_distinct < 0.25

    def test_rarity_all_singletons(self):
        sketch = KMVSketch(k=50)
        sketch.extend(range(1000))
        assert sketch.rarity_estimate() == 1.0

    def test_rarity_no_singletons(self):
        sketch = KMVSketch(k=50)
        sketch.extend(list(range(1000)) * 2)
        assert sketch.rarity_estimate() == 0.0

    def test_rarity_mixture(self):
        # Half the distinct elements appear once, half twice.
        stream = list(range(0, 2000)) + list(range(1000, 2000))
        sketch = KMVSketch(k=200)
        sketch.extend(stream)
        assert abs(sketch.rarity_estimate() - 0.5) < 0.15

    def test_rarity_empty(self):
        assert KMVSketch(k=5).rarity_estimate() == 0.0

    @pytest.mark.parametrize("overlap", [0.3, 0.7])
    def test_resemblance_estimate(self, overlap):
        a_set, b_set = overlapping_sets(overlap)
        a = KMVSketch(k=256)
        b = KMVSketch(k=256)
        a.extend(a_set)
        b.extend(b_set)
        assert abs(a.resemblance(b) - jaccard(a_set, b_set)) < 0.12

    def test_resemblance_requires_same_seed(self):
        with pytest.raises(ReproError):
            KMVSketch(k=5, seed=1).resemblance(KMVSketch(k=5, seed=2))

    def test_invalid_k(self):
        with pytest.raises(ReproError):
            KMVSketch(k=0)

    @given(st.sets(st.integers(0, 10**6), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_property_values_sorted_and_bounded(self, elements):
        sketch = KMVSketch(k=16)
        sketch.extend(elements)
        values = list(sketch.values)
        assert values == sorted(values)
        assert len(values) == min(16, len(elements))

    @given(st.lists(st.integers(0, 1000), max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_property_offer_reports_membership(self, stream):
        from repro.dsms.functions import hash32

        sketch = KMVSketch(k=8)
        for element in stream:
            result = sketch.offer(element)
            assert result == (hash32(element) in sketch._counts)
