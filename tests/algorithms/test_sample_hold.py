"""Estan–Varghese sample-and-hold."""

import random

import pytest

from repro.errors import ReproError
from repro.algorithms.sample_hold import SampleAndHold


def flows(seed=5, n_packets=20_000):
    """A stream with 3 elephants and many mice: (flow, size) pairs."""
    rng = random.Random(seed)
    stream = []
    for _ in range(n_packets):
        u = rng.random()
        if u < 0.15:
            flow = rng.choice(("elephant-1", "elephant-2", "elephant-3"))
            size = rng.randint(1000, 1500)
        else:
            flow = f"mouse-{rng.randrange(5000)}"
            size = rng.randint(40, 120)
        stream.append((flow, size))
    return stream


class TestBasics:
    def test_held_flow_counts_exactly_after_sampling(self):
        sampler = SampleAndHold(byte_probability=1.0 - 1e-12,
                                rng=random.Random(1))
        sampler.offer("f", 100)
        sampler.offer("f", 200)
        assert sampler.estimated_bytes("f") >= 300

    def test_unsampled_flow_estimates_zero(self):
        sampler = SampleAndHold(byte_probability=1e-9, rng=random.Random(2))
        sampler.offer("f", 10)
        assert sampler.estimated_bytes("f") == 0.0

    def test_catch_probability_monotone(self):
        sampler = SampleAndHold(byte_probability=0.001)
        assert sampler.catch_probability(10_000) > sampler.catch_probability(100)
        assert 0.0 <= sampler.catch_probability(1) < 1.0

    def test_invalid_probability(self):
        for p in (0.0, 1.0, -0.1):
            with pytest.raises(ReproError):
                SampleAndHold(p)

    def test_negative_size_rejected(self):
        with pytest.raises(ReproError):
            SampleAndHold(0.01).offer("f", -1)

    def test_reset(self):
        sampler = SampleAndHold(0.5, rng=random.Random(3))
        sampler.extend([("a", 100)] * 10)
        sampler.reset()
        assert sampler.table_size == 0 and sampler.packets_seen == 0


class TestHeavyHitterBehaviour:
    def test_elephants_caught(self):
        stream = flows()
        truth = {}
        for flow, size in stream:
            truth[flow] = truth.get(flow, 0) + size
        threshold = 0.01 * sum(truth.values())
        sampler = SampleAndHold(byte_probability=20.0 / threshold,
                                rng=random.Random(4))
        sampler.extend(stream)
        held = {entry.key for entry in sampler.held_flows()}
        for flow in ("elephant-1", "elephant-2", "elephant-3"):
            assert flow in held

    def test_elephant_estimates_accurate(self):
        stream = flows()
        truth = {}
        for flow, size in stream:
            truth[flow] = truth.get(flow, 0) + size
        threshold = 0.01 * sum(truth.values())
        sampler = SampleAndHold(byte_probability=20.0 / threshold,
                                rng=random.Random(4))
        sampler.extend(stream)
        for flow in ("elephant-1", "elephant-2", "elephant-3"):
            estimate = sampler.estimated_bytes(flow)
            assert estimate == pytest.approx(truth[flow], rel=0.1)

    def test_table_much_smaller_than_flow_count(self):
        stream = flows()
        distinct = len({flow for flow, _size in stream})
        threshold = 0.01 * sum(size for _flow, size in stream)
        sampler = SampleAndHold(byte_probability=20.0 / threshold,
                                rng=random.Random(4))
        sampler.extend(stream)
        assert sampler.table_size < distinct / 2

    def test_heavy_hitters_query_sorted_and_thresholded(self):
        stream = flows()
        threshold = 0.01 * sum(size for _flow, size in stream)
        sampler = SampleAndHold(byte_probability=20.0 / threshold,
                                rng=random.Random(4))
        sampler.extend(stream)
        hitters = sampler.heavy_hitters(threshold)
        sizes = [entry.held_bytes for entry in hitters]
        assert sizes == sorted(sizes, reverse=True)
        p = sampler.byte_probability
        assert all(entry.estimated_bytes(p) >= threshold for entry in hitters)
