"""Reservoir sampling: R, X (skip), and the buffered operator variant."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.algorithms.reservoir import (
    BufferedReservoirSampler,
    ReservoirSampler,
    SkipReservoirSampler,
)


class TestAlgorithmR:
    def test_sample_size_capped(self):
        sampler = ReservoirSampler(5, random.Random(0))
        sampler.extend(range(100))
        assert len(sampler.sample()) == 5
        assert sampler.seen == 100

    def test_short_stream_returns_everything(self):
        sampler = ReservoirSampler(10, random.Random(0))
        sampler.extend(range(3))
        assert sorted(sampler.sample()) == [0, 1, 2]

    def test_sample_is_subset_of_stream(self):
        sampler = ReservoirSampler(8, random.Random(1))
        sampler.extend(range(500))
        assert all(0 <= x < 500 for x in sampler.sample())

    def test_uniformity_mean_position(self):
        # Average sampled position over many runs must approach N/2.
        means = []
        for seed in range(40):
            sampler = ReservoirSampler(20, random.Random(seed))
            sampler.extend(range(1000))
            means.append(statistics.mean(sampler.sample()))
        grand = statistics.mean(means)
        assert abs(grand - 500) < 40

    def test_inclusion_probability_uniform(self):
        # Each of 100 items should appear with probability n/N = 0.2.
        counts = [0] * 100
        runs = 400
        for seed in range(runs):
            sampler = ReservoirSampler(20, random.Random(seed))
            sampler.extend(range(100))
            for item in sampler.sample():
                counts[item] += 1
        for item in (0, 25, 50, 75, 99):
            assert abs(counts[item] / runs - 0.2) < 0.08

    def test_invalid_size(self):
        with pytest.raises(ReproError):
            ReservoirSampler(0)

    @given(st.integers(1, 20), st.lists(st.integers(), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_size_and_membership(self, n, items):
        sampler = ReservoirSampler(n, random.Random(42))
        sampler.extend(items)
        sample = sampler.sample()
        assert len(sample) == min(n, len(items))
        for value in sample:
            assert value in items


class TestAlgorithmX:
    def test_sample_size(self):
        sampler = SkipReservoirSampler(10, random.Random(0))
        for i in range(1000):
            sampler.offer(i)
        assert len(sampler.sample()) == 10

    def test_skips_most_records(self):
        sampler = SkipReservoirSampler(10, random.Random(3))
        selections = sum(1 for i in range(20_000) if sampler.offer(i))
        # Expected selections ~ n * (1 + ln(N/n)) ~ 10 * (1 + 7.6) ~ 86
        assert selections < 400

    def test_uniformity_matches_algorithm_r(self):
        means = []
        for seed in range(40):
            sampler = SkipReservoirSampler(20, random.Random(seed))
            for i in range(1000):
                sampler.offer(i)
            means.append(statistics.mean(sampler.sample()))
        assert abs(statistics.mean(means) - 500) < 40

    def test_invalid_size(self):
        with pytest.raises(ReproError):
            SkipReservoirSampler(-1)


class TestBufferedVariant:
    def test_candidates_bounded_by_tolerance(self):
        sampler = BufferedReservoirSampler(10, tolerance=5, rng=random.Random(0))
        for i in range(50_000):
            sampler.offer(i)
            assert sampler.candidate_count <= sampler.capacity

    def test_cleanings_occur(self):
        sampler = BufferedReservoirSampler(10, tolerance=5, rng=random.Random(0))
        for i in range(50_000):
            sampler.offer(i)
        assert sampler.cleanings >= 1

    def test_final_sample_size(self):
        sampler = BufferedReservoirSampler(10, tolerance=5, rng=random.Random(0))
        for i in range(5000):
            sampler.offer(i)
        assert len(sampler.sample()) == 10

    def test_first_n_always_admitted(self):
        sampler = BufferedReservoirSampler(10, rng=random.Random(0))
        assert all(sampler.offer(i) for i in range(10))

    def test_uniformity_via_replay(self):
        # Replay-based cleaning makes the buffered variant distributed
        # like Algorithm R: mean sampled position ~ N/2.
        means = []
        for seed in range(40):
            sampler = BufferedReservoirSampler(20, tolerance=11,
                                               rng=random.Random(seed))
            for i in range(2000):
                sampler.offer(i)
            means.append(statistics.mean(sampler.sample()))
        assert abs(statistics.mean(means) - 1000) < 100

    def test_invalid_tolerance(self):
        with pytest.raises(ReproError):
            BufferedReservoirSampler(10, tolerance=1)


class TestWeightedReservoir:
    def test_sample_size(self):
        from repro.algorithms.reservoir import WeightedReservoirSampler

        sampler = WeightedReservoirSampler(10, random.Random(1))
        for i in range(500):
            sampler.offer(i, weight=1.0)
        assert len(sampler.sample()) == 10
        assert sampler.seen == 500

    def test_heavier_items_more_likely(self):
        from repro.algorithms.reservoir import WeightedReservoirSampler

        hits = 0
        runs = 300
        for seed in range(runs):
            sampler = WeightedReservoirSampler(5, random.Random(seed))
            for i in range(100):
                sampler.offer(i, weight=100.0 if i == 7 else 1.0)
            if 7 in sampler.sample():
                hits += 1
        # Item 7 holds ~half the total weight: it should almost always be
        # among the 5 selected.
        assert hits > 0.9 * runs

    def test_equal_weights_roughly_uniform(self):
        from repro.algorithms.reservoir import WeightedReservoirSampler

        means = []
        for seed in range(40):
            sampler = WeightedReservoirSampler(20, random.Random(seed))
            for i in range(1000):
                sampler.offer(i, weight=1.0)
            means.append(statistics.mean(sampler.sample()))
        assert abs(statistics.mean(means) - 500) < 50

    def test_invalid_inputs(self):
        from repro.algorithms.reservoir import WeightedReservoirSampler

        with pytest.raises(ReproError):
            WeightedReservoirSampler(0)
        with pytest.raises(ReproError):
            WeightedReservoirSampler(3).offer("x", weight=0.0)


class TestConstantTimeSkip:
    def test_sample_size(self):
        from repro.algorithms.reservoir import ConstantTimeSkipReservoirSampler

        sampler = ConstantTimeSkipReservoirSampler(10, random.Random(0))
        for i in range(2000):
            sampler.offer(i)
        assert len(sampler.sample()) == 10

    def test_constant_work_per_selection(self):
        from repro.algorithms.reservoir import ConstantTimeSkipReservoirSampler

        sampler = ConstantTimeSkipReservoirSampler(10, random.Random(2))
        selections = sum(1 for i in range(50_000) if sampler.offer(i))
        # Expected selections ~ n (1 + ln(N/n)) ~ 10 * (1 + 8.5) ~ 95.
        assert selections < 400

    def test_uniformity(self):
        from repro.algorithms.reservoir import ConstantTimeSkipReservoirSampler

        means = []
        for seed in range(60):
            sampler = ConstantTimeSkipReservoirSampler(20, random.Random(seed))
            for i in range(1000):
                sampler.offer(i)
            means.append(statistics.mean(sampler.sample()))
        assert abs(statistics.mean(means) - 500) < 40

    def test_inclusion_probability_matches_algorithm_r(self):
        from repro.algorithms.reservoir import ConstantTimeSkipReservoirSampler

        counts = [0] * 200
        runs = 300
        for seed in range(runs):
            sampler = ConstantTimeSkipReservoirSampler(20, random.Random(seed))
            for i in range(200):
                sampler.offer(i)
            for item in sampler.sample():
                counts[item] += 1
        for item in (0, 50, 100, 150, 199):
            assert abs(counts[item] / runs - 0.1) < 0.06

    def test_invalid_size(self):
        from repro.algorithms.reservoir import ConstantTimeSkipReservoirSampler

        with pytest.raises(ReproError):
            ConstantTimeSkipReservoirSampler(0)
