"""Uniform sampling baselines (STREAM SAMPLE / Aurora DROP)."""

import random

import pytest

from repro.errors import ReproError
from repro.algorithms.uniform import BernoulliSampler, DropSampler, EveryKthSampler


class TestBernoulli:
    def test_sampling_rate(self):
        sampler = BernoulliSampler(0.1, random.Random(1))
        kept = sum(1 for _ in range(20_000) if sampler.offer())
        assert kept == pytest.approx(2000, rel=0.15)

    def test_probability_one_keeps_everything(self):
        sampler = BernoulliSampler(1.0, random.Random(2))
        assert all(sampler.offer() for _ in range(100))

    def test_estimate_sum_unbiased(self):
        rng = random.Random(3)
        data = [rng.randint(40, 1500) for _ in range(20_000)]
        estimates = []
        for seed in range(30):
            sampler = BernoulliSampler(0.05, random.Random(seed))
            kept = [x for x in data if sampler.offer()]
            estimates.append(sampler.estimate_sum(kept))
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(sum(data), rel=0.03)

    def test_counters(self):
        sampler = BernoulliSampler(0.5, random.Random(4))
        for _ in range(100):
            sampler.offer()
        assert sampler.offered == 100
        assert 0 < sampler.sampled < 100

    def test_invalid_probability(self):
        for p in (0.0, -0.1, 1.5):
            with pytest.raises(ReproError):
                BernoulliSampler(p)


class TestDrop:
    def test_keeps_exactly_one_in_k(self):
        sampler = DropSampler(keep_one_in=5)
        kept = sum(1 for _ in range(100) if sampler.offer())
        assert kept == 20

    def test_phase_controls_which(self):
        a = DropSampler(keep_one_in=4, phase=0)
        b = DropSampler(keep_one_in=4, phase=2)
        pattern_a = [a.offer() for _ in range(8)]
        pattern_b = [b.offer() for _ in range(8)]
        assert pattern_a == [True, False, False, False] * 2
        assert pattern_b == [False, False, True, False] * 2

    def test_estimate_exact_on_uniform_measures(self):
        sampler = DropSampler(keep_one_in=10)
        data = [100] * 1000
        kept = [x for x in data if sampler.offer()]
        assert sampler.estimate_sum(kept) == sum(data)

    def test_systematic_bias_on_periodic_input(self):
        # A period-4 burst pattern aliases with a period-4 drop: the
        # weakness of systematic sampling the docstring warns about.
        sampler = DropSampler(keep_one_in=4, phase=0)
        data = [1000 if i % 4 == 0 else 10 for i in range(1000)]
        kept = [x for x in data if sampler.offer()]
        estimate = sampler.estimate_sum(kept)
        assert estimate > 2 * sum(data)  # aliased: every kept tuple is a burst

    def test_alias(self):
        assert EveryKthSampler is DropSampler

    def test_validation(self):
        with pytest.raises(ReproError):
            DropSampler(0)
        with pytest.raises(ReproError):
            DropSampler(4, phase=4)
