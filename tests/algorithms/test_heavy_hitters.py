"""Manku–Motwani lossy counting: the paper's §4.2 guarantees."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.algorithms.heavy_hitters import HeavyHitter, LossyCounting


def zipf_stream(n=20_000, universe=500, alpha=1.2, seed=7):
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** alpha for i in range(universe)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    stream = []
    for _ in range(n):
        u = rng.random()
        lo, hi = 0, universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        stream.append(lo)
    return stream


class TestGuarantees:
    EPSILON = 0.005
    SUPPORT = 0.02

    def setup_method(self):
        self.stream = zipf_stream()
        self.truth = Counter(self.stream)
        self.sketch = LossyCounting(self.EPSILON)
        self.sketch.extend(self.stream)

    def test_no_false_negatives(self):
        n = len(self.stream)
        reported = {h.element for h in self.sketch.query(self.SUPPORT)}
        for element, count in self.truth.items():
            if count >= self.SUPPORT * n:
                assert element in reported

    def test_no_deep_false_positives(self):
        n = len(self.stream)
        for hitter in self.sketch.query(self.SUPPORT):
            assert self.truth[hitter.element] >= (self.SUPPORT - self.EPSILON) * n

    def test_undercount_bounded_by_epsilon_n(self):
        n = len(self.stream)
        for element, (freq, delta) in self.sketch._entries.items():
            true = self.truth[element]
            assert freq <= true
            assert true - freq <= self.EPSILON * n

    def test_space_bound_respected(self):
        assert self.sketch.entry_count <= self.sketch.space_bound() * 2

    def test_frequency_bounds(self):
        for hitter in self.sketch.query(self.SUPPORT):
            true = self.truth[hitter.element]
            assert hitter.frequency_lower_bound <= true <= hitter.frequency_upper_bound

    def test_results_sorted_descending(self):
        estimates = [h.estimated_frequency for h in self.sketch.query(self.SUPPORT)]
        assert estimates == sorted(estimates, reverse=True)


class TestMechanics:
    def test_bucket_width(self):
        assert LossyCounting(0.01).bucket_width == 100
        assert LossyCounting(0.003).bucket_width == 334

    def test_current_bucket_advances(self):
        sketch = LossyCounting(0.1)  # w = 10
        assert sketch.current_bucket == 1
        sketch.extend(range(10))
        assert sketch.current_bucket == 1
        sketch.offer(99)
        assert sketch.current_bucket == 2

    def test_prunes_at_bucket_boundaries(self):
        sketch = LossyCounting(0.1)
        sketch.extend(range(100))  # all distinct: everything prunable
        assert sketch.prunes == 10
        assert sketch.entry_count < 100

    def test_estimated_frequency_of_untracked_is_zero(self):
        sketch = LossyCounting(0.1)
        sketch.offer("a")
        assert sketch.estimated_frequency("zzz") == 0

    def test_repeated_element_counts(self):
        sketch = LossyCounting(0.1)
        for _ in range(50):
            sketch.offer("hot")
        assert sketch.estimated_frequency("hot") == 50

    def test_invalid_epsilon(self):
        for eps in (0, 1, -0.5):
            with pytest.raises(ReproError):
                LossyCounting(eps)

    def test_query_validation(self):
        sketch = LossyCounting(0.05)
        sketch.extend(range(100))
        with pytest.raises(ReproError):
            sketch.query(0.01)  # below epsilon
        with pytest.raises(ReproError):
            sketch.query(1.5)


class TestProperties:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=2000),
        st.sampled_from([0.02, 0.05, 0.1]),
    )
    @settings(max_examples=40, deadline=None)
    def test_undercount_invariant(self, stream, epsilon):
        sketch = LossyCounting(epsilon)
        sketch.extend(stream)
        truth = Counter(stream)
        n = len(stream)
        for element, (freq, _delta) in sketch._entries.items():
            assert freq <= truth[element]
            assert truth[element] - freq <= epsilon * n + 1

    @given(st.lists(st.integers(0, 10), min_size=50, max_size=1000))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_property(self, stream):
        epsilon, support = 0.05, 0.2
        sketch = LossyCounting(epsilon)
        sketch.extend(stream)
        truth = Counter(stream)
        n = len(stream)
        reported = {h.element for h in sketch.query(support)}
        for element, count in truth.items():
            if count >= support * n:
                assert element in reported
