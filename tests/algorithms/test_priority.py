"""Priority sampling (Duffield–Lund–Thorup)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.algorithms.priority import PrioritySampler


def heavy_tailed(n=3000, seed=7):
    rng = random.Random(seed)
    return [rng.paretovariate(1.3) * 100 for _ in range(n)]


class TestMechanics:
    def test_sample_size_capped_at_k(self):
        sampler = PrioritySampler(k=10, rng=random.Random(1))
        sampler.extend([1.0] * 100)
        assert len(sampler.sample()) == 10

    def test_short_stream_returns_all(self):
        sampler = PrioritySampler(k=10, rng=random.Random(1))
        sampler.extend([1.0] * 4)
        assert len(sampler.sample()) == 4
        assert sampler.tau == 0.0

    def test_tau_positive_once_full(self):
        sampler = PrioritySampler(k=5, rng=random.Random(2))
        sampler.extend([1.0] * 10)
        assert sampler.tau > 0.0

    def test_huge_weights_always_kept(self):
        sampler = PrioritySampler(k=5, rng=random.Random(3))
        sampler.extend([1.0] * 100)
        sampler.offer(10**9, key="whale")
        assert "whale" in {item.key for item in sampler.sample()}

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            PrioritySampler(0)
        with pytest.raises(ReproError):
            PrioritySampler(3).offer(0.0)


class TestEstimation:
    def test_total_estimate_unbiased(self):
        data = heavy_tailed()
        truth = sum(data)
        estimates = []
        for seed in range(40):
            sampler = PrioritySampler(k=100, rng=random.Random(seed))
            sampler.extend(data)
            estimates.append(sampler.estimate_sum())
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(truth, rel=0.05)

    def test_subset_estimate_unbiased(self):
        rng = random.Random(11)
        # Items keyed by color; estimate the sum of the "red" subset.
        data = [("red" if rng.random() < 0.3 else "blue", rng.paretovariate(1.5) * 10)
                for _ in range(3000)]
        truth = sum(w for color, w in data if color == "red")
        estimates = []
        for seed in range(40):
            sampler = PrioritySampler(k=150, rng=random.Random(seed))
            for index, (color, weight) in enumerate(data):
                sampler.offer(weight, key=(color, index))
            estimates.append(
                sampler.estimate_sum(lambda s: s.key[0] == "red")
            )
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(truth, rel=0.1)

    def test_beats_uniform_sampling_variance(self):
        from repro.algorithms.uniform import BernoulliSampler

        data = heavy_tailed()
        k = 100
        priority_estimates = []
        uniform_estimates = []
        for seed in range(30):
            ps = PrioritySampler(k=k, rng=random.Random(seed))
            ps.extend(data)
            priority_estimates.append(ps.estimate_sum())
            bs = BernoulliSampler(k / len(data), random.Random(1000 + seed))
            kept = [x for x in data if bs.offer()]
            uniform_estimates.append(bs.estimate_sum(kept))

        import statistics

        assert statistics.variance(priority_estimates) < statistics.variance(
            uniform_estimates
        )

    @given(st.lists(st.floats(0.1, 1000), min_size=1, max_size=200),
           st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_property_sample_bounds(self, weights, k):
        sampler = PrioritySampler(k=k, rng=random.Random(5))
        sampler.extend(weights)
        sample = sampler.sample()
        assert len(sample) == min(k, len(weights))
        # Estimator weights are never below the item's own weight.
        tau = sampler.tau
        for item in sample:
            assert max(item.weight, tau) >= item.weight
