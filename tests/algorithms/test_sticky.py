"""Sticky sampling (Manku–Motwani)."""

import random
from collections import Counter

import pytest

from repro.errors import ReproError
from repro.algorithms.sticky import StickySampling


def skewed_stream(n=50_000, seed=17):
    rng = random.Random(seed)
    stream = []
    for _ in range(n):
        u = rng.random()
        if u < 0.3:
            stream.append(f"hot-{int(u * 10)}")  # 3 hot elements
        else:
            stream.append(f"cold-{rng.randrange(20_000)}")
    return stream


class TestGuarantees:
    SUPPORT = 0.05
    EPSILON = 0.005

    def make(self, seed=0):
        return StickySampling(
            support=self.SUPPORT, epsilon=self.EPSILON, delta=0.01,
            rng=random.Random(seed),
        )

    def test_no_false_negatives(self):
        stream = skewed_stream()
        truth = Counter(stream)
        n = len(stream)
        failures = 0
        for seed in range(10):
            sketch = self.make(seed)
            sketch.extend(stream)
            reported = {h.element for h in sketch.query()}
            for element, count in truth.items():
                if count >= self.SUPPORT * n and element not in reported:
                    failures += 1
        # Probabilistic guarantee (delta = 1%): allow no failures over the
        # 30 (element, seed) combinations at these margins.
        assert failures == 0

    def test_no_deep_false_positives(self):
        stream = skewed_stream()
        truth = Counter(stream)
        n = len(stream)
        sketch = self.make(3)
        sketch.extend(stream)
        for hitter in sketch.query():
            assert truth[hitter.element] >= (self.SUPPORT - self.EPSILON) * n

    def test_counts_never_overcount(self):
        stream = skewed_stream(n=20_000)
        truth = Counter(stream)
        sketch = self.make(4)
        sketch.extend(stream)
        for element in list(sketch._counts)[:200]:
            assert sketch.estimated_frequency(element) <= truth[element]

    def test_space_independent_of_stream_length(self):
        sketch_small = self.make(5)
        sketch_small.extend(skewed_stream(n=20_000, seed=5))
        sketch_large = self.make(5)
        sketch_large.extend(skewed_stream(n=80_000, seed=5))
        bound = sketch_large.expected_space()
        assert sketch_large.entry_count < 8 * bound
        # Crucially, space does not scale with N (lossy counting's does).
        assert sketch_large.entry_count < 4 * max(1, sketch_small.entry_count)


class TestMechanics:
    def test_rate_doubles_on_schedule(self):
        sketch = StickySampling(support=0.1, epsilon=0.02, delta=0.1,
                                rng=random.Random(6))
        t = sketch.t
        sketch.extend(range(2 * t))
        assert sketch.sampling_rate == 1
        sketch.extend(range(2 * t, 2 * t + 10))
        assert sketch.sampling_rate == 2
        assert sketch.rate_changes == 1

    def test_existing_entries_count_exactly(self):
        sketch = StickySampling(support=0.1, epsilon=0.02, delta=0.1,
                                rng=random.Random(7))
        for _ in range(100):
            sketch.offer("hot")
        assert sketch.estimated_frequency("hot") == 100

    def test_validation(self):
        with pytest.raises(ReproError):
            StickySampling(support=0)
        with pytest.raises(ReproError):
            StickySampling(support=0.1, epsilon=0.2)
        with pytest.raises(ReproError):
            StickySampling(support=0.1, delta=0)

    def test_query_sorted(self):
        sketch = StickySampling(support=0.05, epsilon=0.01,
                                rng=random.Random(8))
        sketch.extend(skewed_stream(n=10_000))
        estimates = [h.estimated_frequency for h in sketch.query()]
        assert estimates == sorted(estimates, reverse=True)
