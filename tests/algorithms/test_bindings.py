"""SFUN packs running inside the sampling operator: the §6.6 queries."""

from collections import Counter, defaultdict

import pytest

from repro.dsms.runtime import Gigascope
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.algorithms.bindings import (
    BASIC_SUBSET_SUM_QUERY,
    HEAVY_HITTERS_QUERY,
    MIN_HASH_QUERY,
    PREFILTER_QUERY,
    RESERVOIR_QUERY,
    SUBSET_SUM_QUERY,
    basic_subset_sum_library,
    heavy_hitters_library,
    reservoir_library,
    subset_sum_library,
    subset_sum_query,
)
from repro.algorithms.heavy_hitters import LossyCounting
from repro.algorithms.minhash import KMVSketch


def trace(duration=60, scale=0.01, seed=77):
    config = TraceConfig(duration_seconds=duration, rate_scale=scale, seed=seed)
    return list(research_center_feed(config))


def fresh_gigascope(*libraries):
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    for library in libraries:
        gs.use_stateful_library(library)
    return gs


class TestSubsetSumQuery:
    def run(self, relax, target=100, data=None):
        gs = fresh_gigascope(subset_sum_library(relax_factor=relax))
        handle = gs.add_query(SUBSET_SUM_QUERY.format(window=20, target=target),
                              name="ss")
        gs.run(iter(data if data is not None else trace()))
        return handle

    def test_final_sample_near_target(self):
        handle = self.run(relax=10.0)
        for stats in handle.operator.window_stats:
            assert stats.output_tuples <= 100
            assert stats.output_tuples >= 80

    def test_estimates_accurate_relaxed(self):
        data = trace(duration=100)
        handle = self.run(relax=10.0, data=data)
        actual = defaultdict(int)
        for record in data:
            actual[record["time"] // 20] += record["len"]
        estimates = defaultdict(float)
        for row in handle.results:
            estimates[row["tb"]] += row[3]
        for window in list(actual)[1:]:
            assert estimates[window] == pytest.approx(actual[window], rel=0.15)

    def test_nonrelaxed_understates_after_drops(self):
        data = trace(duration=200, seed=123)
        relaxed = self.run(relax=10.0, data=data)
        nonrelaxed = self.run(relax=1.0, data=data)
        actual = defaultdict(int)
        for record in data:
            actual[record["time"] // 20] += record["len"]

        def mean_error(handle):
            estimates = defaultdict(float)
            for row in handle.results:
                estimates[row["tb"]] += row[3]
            windows = sorted(actual)[1:]
            return sum(
                abs(1 - estimates[w] / actual[w]) for w in windows
            ) / len(windows)

        assert mean_error(relaxed) < mean_error(nonrelaxed)

    def test_relaxed_runs_more_cleanings(self):
        data = trace(duration=100)
        relaxed = self.run(relax=10.0, data=data)
        nonrelaxed = self.run(relax=1.0, data=data)
        total = lambda handle: sum(
            s.cleaning_phases for s in handle.operator.window_stats[1:]
        )
        assert total(relaxed) > total(nonrelaxed)

    def test_output_weights_are_floored(self):
        handle = self.run(relax=10.0)
        # UMAX(sum(len), ssthreshold()): every output weight >= packet size.
        assert all(row[3] >= 40 for row in handle.results)

    def test_query_builder_changes_stream(self):
        text = subset_sum_query(window=5, target=10, stream="feeder")
        assert "FROM feeder" in text


class TestBasicSubsetSumSelection:
    def test_sampling_fraction(self):
        data = trace()
        total = sum(r["len"] for r in data)
        z = total / 200
        gs = fresh_gigascope(basic_subset_sum_library())
        handle = gs.add_query(BASIC_SUBSET_SUM_QUERY.format(z=z), name="basic")
        gs.run(iter(data))
        # ~200 samples expected from the credit counter (+ large packets).
        assert 150 <= len(handle.results) <= 400

    def test_prefilter_floors_lengths(self):
        data = trace()
        z = 500.0
        gs = fresh_gigascope(basic_subset_sum_library())
        handle = gs.add_query(PREFILTER_QUERY.format(z=z), name="pre")
        gs.run(iter(data))
        assert all(row["len"] >= z for row in handle.results)

    def test_prefilter_feeds_dynamic_sampler(self):
        data = trace(duration=100)
        total = sum(r["len"] for r in data) / 5  # per-20s-window volume
        z_dyn = total / 100
        gs = fresh_gigascope(basic_subset_sum_library(), subset_sum_library(
            relax_factor=10.0))
        gs.add_query(PREFILTER_QUERY.format(z=z_dyn / 10), name="pre",
                     keep_results=False)
        handle = gs.add_query(
            subset_sum_query(window=20, target=100, stream="pre"), name="ss"
        )
        gs.run(iter(data))
        actual = defaultdict(int)
        for record in data:
            actual[record["time"] // 20] += record["len"]
        estimates = defaultdict(float)
        for row in handle.results:
            estimates[row["tb"]] += row[3]
        for window in sorted(actual)[1:]:
            assert estimates[window] == pytest.approx(actual[window], rel=0.2)


class TestHeavyHittersQuery:
    def test_matches_standalone_lossy_counting(self):
        data = trace(duration=60, scale=0.02)
        gs = fresh_gigascope(heavy_hitters_library(bucket_width=100))
        handle = gs.add_query(
            HEAVY_HITTERS_QUERY.format(window=60, bucket=100), name="hh"
        )
        gs.run(iter(data))

        survivors = {row["srcIP"] for row in handle.results}
        truth = Counter(r["srcIP"] for r in data)
        n = len(data)
        support = 0.02
        # No false negatives: every true heavy source survives the query's
        # cleaning (its count(*) can't be pruned).
        for src, count in truth.items():
            if count >= support * n:
                assert src in survivors
        # The survivor set is a small fraction of the distinct sources.
        assert len(survivors) < len(truth) / 2

    def test_counts_undercount_at_most_bucket(self):
        data = trace(duration=60, scale=0.02)
        gs = fresh_gigascope(heavy_hitters_library(bucket_width=100))
        handle = gs.add_query(
            HEAVY_HITTERS_QUERY.format(window=60, bucket=100), name="hh"
        )
        gs.run(iter(data))
        truth = Counter(r["srcIP"] for r in data)
        buckets = len(data) // 100 + 1
        for row in handle.results:
            true = truth[row["srcIP"]]
            assert row[3] <= true
            assert true - row[3] <= buckets


class TestReservoirQuery:
    def run_query(self, data, target=50, tolerance=5):
        gs = fresh_gigascope(reservoir_library(tolerance=tolerance))
        handle = gs.add_query(
            RESERVOIR_QUERY.format(window=30, target=target), name="rs"
        )
        gs.run(iter(data))
        return handle

    def test_exact_target_per_window(self):
        handle = self.run_query(trace(duration=90, scale=0.02))
        for stats in handle.operator.window_stats:
            assert stats.output_tuples == 50

    def test_admissions_exceed_target(self):
        handle = self.run_query(trace(duration=90, scale=0.02))
        for stats in handle.operator.window_stats:
            assert stats.tuples_admitted >= 50

    def test_samples_roughly_uniform_over_window(self):
        # Mean uts-rank of sampled packets within each window ~ middle.
        data = trace(duration=30, scale=0.05, seed=5)
        handle = self.run_query(data, target=100, tolerance=3)
        window0 = [r["uts"] for r in data if r["time"] < 30]
        rank = {uts: i for i, uts in enumerate(sorted(window0))}
        # Output rows carry (tb, srcIP, destIP); re-run to collect uts via
        # admitted stats instead: use positions of sampled destIPs' packets.
        # Simpler uniformity proxy: sampled tuples' srcIP distribution should
        # resemble the stream's (chi-square-free check on the top source).
        truth = Counter(r["srcIP"] for r in data)
        sampled = Counter(row["srcIP"] for row in handle.results)
        top_share_truth = truth.most_common(1)[0][1] / len(data)
        top = truth.most_common(1)[0][0]
        top_share_sample = sampled.get(top, 0) / max(1, sum(sampled.values()))
        assert abs(top_share_sample - top_share_truth) < 0.15


class TestMinHashQuery:
    def test_matches_standalone_kmv(self):
        data = trace(duration=30, scale=0.05, seed=9)
        gs = fresh_gigascope()
        handle = gs.add_query(MIN_HASH_QUERY.format(window=30, k=20), name="mh")
        gs.run(iter(data))

        per_source = defaultdict(set)
        for row in handle.results:
            per_source[row["srcIP"]].add(row["HX"])

        busiest = Counter(r["srcIP"] for r in data).most_common(3)
        for src, _count in busiest:
            sketch = KMVSketch(k=20)
            sketch.extend(r["destIP"] for r in data if r["srcIP"] == src)
            assert per_source[src] == set(sketch.values)
