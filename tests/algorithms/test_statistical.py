"""Statistical invariants of the sampling algorithms (fixed seeds).

Three properties the paper's algorithms promise, checked empirically:

* Reservoir variants draw *uniform* samples: over many seeded trials the
  per-item inclusion counts pass a chi-squared uniformity test.  With 20
  items there are 19 degrees of freedom; the alpha = 0.001 critical
  value is 43.82 (hardcoded — no scipy dependency).  Trials are seeded
  0..T-1, so the statistic is deterministic and the test cannot flake.
* Priority sampling includes each item with probability min(1, w/tau)
  and its estimator Sum max(w, tau) is unbiased for the total.
* The fixed-threshold subset-sum sampler's credit counter gives a
  deterministic one-sided error: actual - z <= estimate <= actual.
"""

import random

import pytest

from repro.algorithms.priority import PrioritySampler
from repro.algorithms.reservoir import (
    ConstantTimeSkipReservoirSampler,
    ReservoirSampler,
    SkipReservoirSampler,
)
from repro.algorithms.subset_sum import ThresholdSampler

# Chi-squared critical value, df = 19, alpha = 0.001.
CHI2_CRIT_DF19 = 43.82

ITEMS = 20
RESERVOIR = 4
TRIALS = 3000


class TestReservoirUniformity:
    @pytest.mark.parametrize(
        "cls",
        [ReservoirSampler, SkipReservoirSampler, ConstantTimeSkipReservoirSampler],
        ids=lambda c: c.__name__,
    )
    def test_chi_squared_uniform_inclusion(self, cls):
        counts = [0] * ITEMS
        for trial in range(TRIALS):
            sampler = cls(RESERVOIR, rng=random.Random(trial))
            for item in range(ITEMS):
                sampler.offer(item)
            for item in sampler.sample():
                counts[item] += 1
        assert sum(counts) == TRIALS * RESERVOIR
        expected = TRIALS * RESERVOIR / ITEMS
        chi2 = sum((c - expected) ** 2 / expected for c in counts)
        assert chi2 < CHI2_CRIT_DF19, (chi2, counts)

    def test_skip_variants_agree_with_algorithm_r_statistically(self):
        # Same uniformity target, so the three variants' count vectors
        # must all be close to flat; compare their chi-squareds too.
        stats = []
        for cls in (ReservoirSampler, SkipReservoirSampler):
            counts = [0] * ITEMS
            for trial in range(TRIALS):
                sampler = cls(RESERVOIR, rng=random.Random(10_000 + trial))
                for item in range(ITEMS):
                    sampler.offer(item)
                for item in sampler.sample():
                    counts[item] += 1
            expected = TRIALS * RESERVOIR / ITEMS
            stats.append(sum((c - expected) ** 2 / expected for c in counts))
        assert all(s < CHI2_CRIT_DF19 for s in stats), stats


class TestPriorityInclusion:
    WEIGHTS = [1.0] * 10 + [10.0] * 10 + [100.0] * 5 + [1000.0] * 5
    K = 10
    TRIALS = 1500

    def run_trials(self):
        included = [0] * len(self.WEIGHTS)
        expected = [0.0] * len(self.WEIGHTS)
        estimates = []
        for trial in range(self.TRIALS):
            sampler = PrioritySampler(self.K, rng=random.Random(trial))
            for key, weight in enumerate(self.WEIGHTS):
                sampler.offer(weight, key=key)
            tau = sampler.tau
            for item in sampler.sample():
                included[item.key] += 1
            for key, weight in enumerate(self.WEIGHTS):
                expected[key] += min(1.0, weight / tau)
            estimates.append(sampler.estimate_sum())
        return included, expected, estimates

    def test_inclusion_probability_is_min_one_w_over_tau(self):
        included, expected, _ = self.run_trials()
        for key in range(len(self.WEIGHTS)):
            empirical = included[key] / self.TRIALS
            predicted = expected[key] / self.TRIALS
            # ~5 binomial standard errors at T=1500 is under 0.065.
            assert abs(empirical - predicted) < 0.07, (
                key,
                self.WEIGHTS[key],
                empirical,
                predicted,
            )

    def test_estimator_is_unbiased_for_the_total(self):
        _, _, estimates = self.run_trials()
        actual = sum(self.WEIGHTS)
        mean = sum(estimates) / len(estimates)
        assert abs(mean - actual) / actual < 0.03, (mean, actual)

    def test_heaviest_items_are_always_included(self):
        included, _, _ = self.run_trials()
        # w = 1000 >> tau in every trial: inclusion probability 1.
        for key in range(len(self.WEIGHTS) - 5, len(self.WEIGHTS)):
            assert included[key] == self.TRIALS


class TestSubsetSumOneSidedError:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("z", [40.0, 500.0, 1500.0])
    def test_credit_counter_error_bound(self, seed, z):
        rng = random.Random(seed)
        weights = [rng.uniform(40, 1500) for _ in range(2000)]
        sampler = ThresholdSampler(z)
        estimate = 0.0
        for w in weights:
            if sampler.offer(w):
                estimate += sampler.adjusted_weight(w)
        actual = sum(weights)
        # Deterministic one-sided error: the unemitted credit is the only
        # shortfall, and it never exceeds z.
        assert actual - z <= estimate <= actual, (estimate, actual, z)

    def test_big_tuples_are_always_sampled_exactly(self):
        sampler = ThresholdSampler(100.0)
        weights = [500.0, 900.0, 101.0]
        estimate = sum(
            sampler.adjusted_weight(w) for w in weights if sampler.offer(w)
        )
        assert estimate == sum(weights)
        assert sampler.sampled == len(weights)

    def test_all_small_stream_underestimates_by_less_than_z(self):
        z = 250.0
        sampler = ThresholdSampler(z)
        weights = [10.0] * 1000
        estimate = sum(
            sampler.adjusted_weight(w) for w in weights if sampler.offer(w)
        )
        actual = sum(weights)
        assert actual - z <= estimate <= actual
        # Every emitted sample carries weight exactly z here.
        assert estimate == sampler.sampled * z
