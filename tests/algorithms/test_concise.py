"""Concise sampling (Gibbons–Matias)."""

import random
from collections import Counter

import pytest

from repro.errors import ReproError
from repro.algorithms.concise import ConciseSampler


def zipf_stream(n=30_000, universe=2000, seed=13):
    rng = random.Random(seed)
    stream = []
    for _ in range(n):
        rank = int(rng.paretovariate(1.1)) % universe
        stream.append(rank)
    return stream


class TestFootprint:
    def test_footprint_bounded(self):
        sampler = ConciseSampler(capacity=100, rng=random.Random(1))
        for value in zipf_stream():
            sampler.offer(value)
            assert sampler.footprint <= 100

    def test_tau_grows_under_pressure(self):
        sampler = ConciseSampler(capacity=50, rng=random.Random(2))
        sampler.extend(zipf_stream())
        assert sampler.tau > 1.0
        assert sampler.cleanings >= 1

    def test_no_thinning_when_capacity_sufficient(self):
        sampler = ConciseSampler(capacity=1000, rng=random.Random(3))
        sampler.extend([1, 2, 3] * 10)
        assert sampler.tau == 1.0
        assert sampler.estimated_frequency(1) == 10

    def test_concise_beats_plain_sample_on_skew(self):
        # A hot value occupies one pair (2 units) however often it occurs;
        # the same sample as a plain list would use one unit per point.
        sampler = ConciseSampler(capacity=100, rng=random.Random(4))
        sampler.extend([42] * 10_000)
        assert sampler.footprint == 2
        assert sampler.sample_points() == 10_000


class TestEstimation:
    def test_frequency_estimates_unbiased_for_hot_values(self):
        stream = zipf_stream()
        truth = Counter(stream)
        hot = truth.most_common(1)[0][0]
        estimates = []
        for seed in range(30):
            sampler = ConciseSampler(capacity=200, rng=random.Random(seed))
            sampler.extend(stream)
            estimates.append(sampler.estimated_frequency(hot))
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(truth[hot], rel=0.15)

    def test_frequent_values_sorted(self):
        sampler = ConciseSampler(capacity=200, rng=random.Random(5))
        sampler.extend(zipf_stream())
        frequent = sampler.frequent_values(min_estimated=100)
        estimates = [estimate for _value, estimate in frequent]
        assert estimates == sorted(estimates, reverse=True)

    def test_unseen_value_estimates_zero(self):
        sampler = ConciseSampler(capacity=10, rng=random.Random(6))
        sampler.extend([1, 1, 2])
        assert sampler.estimated_frequency("never") == 0


class TestValidation:
    def test_invalid_configs(self):
        with pytest.raises(ReproError):
            ConciseSampler(capacity=1)
        with pytest.raises(ReproError):
            ConciseSampler(capacity=10, tau=0.5)
        with pytest.raises(ReproError):
            ConciseSampler(capacity=10, tau_growth=1.0)
