"""SA401: the serving-shareability lint mirrors the engine's decisions.

The rule's whole design is *one predicate, two callers*:
``repro.serving.sharing.share_signature`` decides sharing at runtime
(``StandingQueryEngine.register``) and at compile time (``check_serving``).
These tests pin the mirror: for every shipped example, the linter warns
exactly when the engine would serve the query on a private feed.
"""

import glob
import os

import pytest

from repro.analysis.execsafety import parse_target
from repro.analysis.linter import lint_source
from repro.serving.server import StandingQueryEngine

from tests.serving.conftest import make_instance

EXAMPLES = sorted(
    glob.glob(
        os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "queries", "*.gsql"
        )
    )
)

SERVE = parse_target("serve")
STATEFUL_SELECTION = "SELECT time, srcIP FROM TCP WHERE ssbasic(len, 25) = TRUE"


class TestGating:
    def test_no_target_no_rule(self):
        result = lint_source(STATEFUL_SELECTION)
        assert not any(d.rule == "SA401" for d in result.diagnostics)
        assert "serving" not in result.plan.annotations

    def test_target_without_serve_no_rule(self):
        result = lint_source(STATEFUL_SELECTION, target=parse_target("durable"))
        assert not any(d.rule == "SA401" for d in result.diagnostics)
        assert "serving" not in result.plan.annotations

    def test_serve_flag_parses_and_describes(self):
        target = parse_target("shards=2,serve")
        assert target.serve
        assert target.describe() == "shards=2,serve"
        assert target.to_json()["serve"] is True


class TestSA401:
    def test_stateful_selection_warns(self):
        result = lint_source(STATEFUL_SELECTION, target=SERVE)
        assert result.ok  # a warning, not an error: the server still serves it
        [diag] = [d for d in result.diagnostics if d.rule == "SA401"]
        assert "stateful selection" in diag.message
        assert "private" in diag.hint
        annotation = result.plan.annotations["serving"]
        assert annotation["shareable"] is False
        assert annotation["reason"] in diag.message

    def test_plain_selection_is_clean_and_annotated(self):
        result = lint_source(
            "SELECT time, srcIP FROM TCP WHERE len > 100", target=SERVE
        )
        assert result.clean
        annotation = result.plan.annotations["serving"]
        assert annotation["shareable"] is True
        assert "WHERE (len > 100)" in annotation["signature"]

    def test_pragma_suppresses_it(self):
        result = lint_source(
            STATEFUL_SELECTION + "\n-- lint: disable=SA401", target=SERVE
        )
        assert not any(d.rule == "SA401" for d in result.diagnostics)

    def test_sarif_knows_the_rule(self):
        from repro.analysis.sarif import render_report

        result = lint_source(STATEFUL_SELECTION, target=SERVE)
        report = render_report([result], "sarif")
        assert "SA401" in report


class TestMirrorsTheEngine:
    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[os.path.basename(p) for p in EXAMPLES]
    )
    def test_lint_agrees_with_register(self, path):
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        lint_warns = any(
            d.rule == "SA401"
            for d in lint_source(text, target=SERVE).diagnostics
        )
        engine = StandingQueryEngine(make_instance)
        sq = engine.register(text, name="q")
        engine_refuses = sq.signature is None
        assert lint_warns == engine_refuses, (
            f"{os.path.basename(path)}: lint says"
            f" {'refuse' if lint_warns else 'share'}, engine says"
            f" {'refuse' if engine_refuses else 'share'}"
            f" ({sq.share_reason})"
        )
