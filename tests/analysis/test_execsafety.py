"""The SA3xx execution-safety rules (``repro.analysis.execsafety``).

The family's contract is a **one-to-one mapping** with the runtime
refusal sites: ``repro lint --target <spec>`` must report an SA3xx error
exactly when deploying the query under ``<spec>`` makes
``ShardedGigascope.add_query`` or ``DurableRunner.__init__`` raise.
These tests pin both directions over the whole shipped example corpus
plus targeted single-rule cases.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.execsafety import ExecTarget, parse_target
from repro.analysis.linter import default_lint_registries, lint_source
from repro.dsms.durability import DurableRunner
from repro.dsms.rebalance import RebalancePolicy
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope
from repro.dsms.stateful import StatefulLibrary, StatefulState
from repro.errors import ExecutionError, PlanningError
from repro.streams.schema import TCP_SCHEMA
from repro.algorithms.bindings import (
    basic_subset_sum_library,
    distinct_sampling_library,
    heavy_hitters_library,
    reservoir_library,
    subset_sum_library,
)

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples/queries").glob("*.gsql")
)


def rules_of(result):
    return {d.rule for d in result.diagnostics}


def make_runtime(shards=0, supervise=False, shed_threshold=None, rebalance=False):
    """A fully-loaded runtime mirroring the lint registries."""
    if shards > 0:
        gs = ShardedGigascope(
            shards=shards,
            supervise=supervise,
            shed_threshold=shed_threshold,
            rebalance=RebalancePolicy() if rebalance else None,
        )
    else:
        gs = Gigascope(shed_threshold=shed_threshold)
    gs.register_stream(TCP_SCHEMA)
    for pack in (
        subset_sum_library(),
        basic_subset_sum_library(),
        reservoir_library(),
        heavy_hitters_library(),
        distinct_sampling_library(),
    ):
        gs.use_stateful_library(pack)
    return gs


class TestParseTarget:
    def test_full_spec(self):
        target = parse_target("shards=4,processes,supervise,durable,shed=100")
        assert target == ExecTarget(
            shards=4,
            processes=True,
            supervise=True,
            durable=True,
            shed_threshold=100,
        )

    def test_empty_means_serial(self):
        target = parse_target("")
        assert target == ExecTarget()
        assert not target.sharded
        assert target.describe() == "serial"

    def test_describe_round_trips(self):
        spec = "shards=4,supervise,durable"
        assert parse_target(spec).describe() == spec

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("shards=zero", "integer"),
            ("shards=0", ">= 1"),
            ("durable=1", "takes no value"),
            ("bogus", "unknown target item"),
            ("shed", "integer"),
        ],
    )
    def test_rejects_bad_specs(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_target(spec)

    def test_whitespace_tolerated(self):
        assert parse_target(" shards = 2 , durable ") == ExecTarget(
            shards=2, durable=True
        )

    def test_rebalance_flag(self):
        target = parse_target("shards=4,supervise,rebalance")
        assert target == ExecTarget(shards=4, supervise=True, rebalance=True)
        assert target.describe() == "shards=4,supervise,rebalance"


class TestGating:
    def test_no_target_no_sa3xx(self, registries):
        # unsound_unshardable is the worst case: serial lint stays clean.
        text = (EXAMPLES[0].parent / "unsound_unshardable.gsql").read_text()
        result = lint_source(text, registries)
        assert result.clean, result.render()

    def test_all_sa3xx_are_errors(self, registries):
        text = (EXAMPLES[0].parent / "unsound_unshardable.gsql").read_text()
        result = lint_source(
            text, registries, target=parse_target("shards=4,durable")
        )
        assert rules_of(result) == {"SA301", "SA302", "SA304"}
        assert all(d.is_error for d in result.diagnostics)


class TestSingleRules:
    def test_sa301_no_ordered_output(self, registries):
        result = lint_source(
            "SELECT srcIP, destIP FROM TCP WHERE len > 100\n"
            "-- lint: disable=SA102",
            registries,
            target=parse_target("shards=2"),
        )
        assert "SA301" in rules_of(result), result.render()

    def test_sa301_silenced_by_ordered_column(self, registries):
        result = lint_source(
            "SELECT time, srcIP FROM TCP WHERE len > 100\n"
            "-- lint: disable=SA102",
            registries,
            target=parse_target("shards=2"),
        )
        assert "SA301" not in rules_of(result), result.render()

    def test_sa302_unpartitionable_state(self, registries):
        result = lint_source(
            "SELECT time, srcIP FROM TCP WHERE ssbasic(len, 25) = TRUE",
            registries,
            target=parse_target("shards=2"),
        )
        diags = [d for d in result.diagnostics if d.rule == "SA302"]
        assert diags, result.render()
        # Anchored on the SFUN call whose global state blocks sharding.
        assert diags[0].span is not None and diags[0].span.line == 1

    def test_sa303_durable_plus_shedding(self, registries):
        result = lint_source(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/20 as tb",
            registries,
            target=parse_target("durable,shed=100"),
        )
        assert "SA303" in rules_of(result)

    def test_sa304_durable_unsupervised_shards(self, registries):
        result = lint_source(
            "SELECT tb, srcIP, sum(len) FROM TCP GROUP BY time/20 as tb, srcIP",
            registries,
            target=parse_target("shards=4,durable"),
        )
        assert "SA304" in rules_of(result)

    def test_sa304_supervision_silences_it(self, registries):
        result = lint_source(
            "SELECT tb, srcIP, sum(len) FROM TCP GROUP BY time/20 as tb, srcIP",
            registries,
            target=parse_target("shards=4,durable,supervise"),
        )
        assert "SA304" not in rules_of(result), result.render()

    def test_pragma_applies_to_sa3xx(self, registries):
        text = (EXAMPLES[0].parent / "unsound_unshardable.gsql").read_text()
        result = lint_source(
            "-- lint: disable=SA301,SA302,SA304\n" + text,
            registries,
            target=parse_target("shards=4,durable"),
        )
        assert result.clean, result.render()


def flaky_library():
    """A pack whose state opts out of checkpointing (SA305 fixture)."""
    library = StatefulLibrary()

    @library.state("flaky_state")
    class FlakyState(StatefulState):
        checkpointable = False  # models a live external resource

    @library.sfun("flaky", state="flaky_state")
    def flaky(state: FlakyState, measure: int) -> bool:
        return True

    return library


FLAKY_QUERY = "SELECT time, srcIP FROM TCP WHERE flaky(len) = TRUE"


class TestSA305:
    def make_registries(self):
        registries = default_lint_registries()
        registries.stateful = registries.stateful.merge(flaky_library())
        return registries

    def test_non_checkpointable_state_under_durable(self):
        result = lint_source(
            FLAKY_QUERY, self.make_registries(), target=parse_target("durable")
        )
        diags = [d for d in result.diagnostics if d.rule == "SA305"]
        assert diags, result.render()
        assert "flaky_state" in diags[0].message

    def test_checkpointable_states_are_fine(self, registries):
        result = lint_source(
            "SELECT time, srcIP FROM TCP WHERE rsample(100) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP, uts\n"
            "HAVING rsfinal_clean() = TRUE\n"
            "CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE\n"
            "CLEANING BY rsclean_with() = TRUE",
            registries,
            target=parse_target("durable"),
        )
        assert "SA305" not in rules_of(result), result.render()

    def test_runtime_twin_refuses(self, tmp_path):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(flaky_library())
        gs.add_query(FLAKY_QUERY, name="q")
        with pytest.raises(ExecutionError, match="flaky_state"):
            DurableRunner(gs, str(tmp_path / "journal.bin"))

    def test_runtime_accepts_checkpointable_state(self, tmp_path):
        gs = make_runtime()
        gs.add_query(
            "SELECT time, srcIP FROM TCP WHERE ssbasic(len, 25) = TRUE",
            name="q",
        )
        runner = DurableRunner(gs, str(tmp_path / "journal.bin"))
        assert runner is not None


class TestSA306:
    def make_registries(self):
        registries = default_lint_registries()
        registries.stateful = registries.stateful.merge(flaky_library())
        return registries

    def test_non_migratable_state_under_rebalance(self):
        result = lint_source(
            FLAKY_QUERY,
            self.make_registries(),
            target=parse_target("shards=2,rebalance"),
        )
        diags = [d for d in result.diagnostics if d.rule == "SA306"]
        assert diags, result.render()
        assert "flaky_state" in diags[0].message
        assert "not migratable across shard boundaries" in diags[0].message

    def test_silent_without_rebalance_flag(self):
        result = lint_source(
            FLAKY_QUERY,
            self.make_registries(),
            target=parse_target("shards=2"),
        )
        assert "SA306" not in rules_of(result), result.render()

    def test_checkpointable_states_are_fine(self, registries):
        text = (EXAMPLES[0].parent / "top_talkers.gsql").read_text()
        result = lint_source(
            text, registries, target=parse_target("shards=2,rebalance")
        )
        assert "SA306" not in rules_of(result), result.render()

    def test_runtime_twin_refuses(self):
        sh = ShardedGigascope(shards=2, rebalance=RebalancePolicy())
        sh.register_stream(TCP_SCHEMA)
        sh.use_stateful_library(flaky_library())
        with pytest.raises(
            PlanningError, match="not migratable across shard boundaries"
        ):
            sh.add_query(FLAKY_QUERY, name="q")

    def test_runtime_accepts_checkpointable_state(self):
        sh = make_runtime(shards=2, rebalance=True)
        text = (EXAMPLES[0].parent / "top_talkers.gsql").read_text()
        assert sh.add_query(text, name="q") is not None


class TestOneToOneMapping:
    """lint --target reports an error ⟺ the runtime refuses the deployment."""

    @pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
    def test_sharding_verdict_matches_runtime(self, registries, path):
        text = path.read_text()
        result = lint_source(text, registries, target=parse_target("shards=4"))
        lint_refuses = bool(
            {"SA301", "SA302"} & {d.rule for d in result.errors}
        )
        gs = make_runtime(shards=4)
        try:
            gs.add_query(text, name="q")
            runtime_refuses = False
        except PlanningError:
            runtime_refuses = True
        assert lint_refuses == runtime_refuses, result.render()

    @pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
    def test_rebalance_verdict_matches_runtime(self, registries, path):
        text = path.read_text()
        result = lint_source(
            text, registries, target=parse_target("shards=4,rebalance")
        )
        lint_refuses = bool(
            {"SA301", "SA302", "SA306"} & {d.rule for d in result.errors}
        )
        gs = make_runtime(shards=4, rebalance=True)
        try:
            gs.add_query(text, name="q")
            runtime_refuses = False
        except PlanningError:
            runtime_refuses = True
        assert lint_refuses == runtime_refuses, result.render()

    @pytest.mark.parametrize(
        "spec, shards, supervise, shed",
        [
            ("durable", 0, False, None),
            ("durable,shed=100", 0, False, 100),
            ("shards=4,durable", 4, False, None),
            ("shards=4,durable,supervise", 4, True, None),
        ],
    )
    def test_durability_verdict_matches_runtime(
        self, registries, tmp_path, spec, shards, supervise, shed
    ):
        # top_talkers shards cleanly, so any refusal is durability's.
        text = (EXAMPLES[0].parent / "top_talkers.gsql").read_text()
        result = lint_source(text, registries, target=parse_target(spec))
        lint_refuses = bool(
            {"SA303", "SA304", "SA305"} & {d.rule for d in result.errors}
        )
        gs = make_runtime(shards=shards, supervise=supervise, shed_threshold=shed)
        gs.add_query(text, name="q")
        try:
            DurableRunner(gs, str(tmp_path / "journal.bin"))
            runtime_refuses = False
        except ExecutionError:
            runtime_refuses = True
        assert lint_refuses == runtime_refuses, result.render()


class TestAnnotations:
    def test_execsafety_exported_without_target(self, registries):
        result = lint_source(
            "SELECT tb, srcIP, sum(len) FROM TCP GROUP BY time/20 as tb, srcIP",
            registries,
        )
        facts = result.plan.annotations["execsafety"]
        assert facts["target"] is None
        assert facts["mergeable"] is True
        assert facts["shardable"] is True
        assert "srcIP" in facts["partition_candidates"]
        assert facts["checkpointable"] is True

    def test_states_and_verdicts_for_stateful_selection(self, registries):
        result = lint_source(
            "SELECT time, srcIP FROM TCP WHERE ssbasic(len, 25) = TRUE",
            registries,
            target=parse_target("durable"),
        )
        facts = result.plan.annotations["execsafety"]
        assert facts["states"] and facts["partition_candidates"] == []
        assert facts["shardable"] is False
        assert facts["target"]["durable"] is True
