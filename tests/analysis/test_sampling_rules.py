"""The SA2xx sampling-soundness rules (``repro.analysis.sampling_algebra``).

Each rule gets a fire case and a don't-fire case; the fact lattice and
the exported ``plan.annotations["sampling"]`` summary are covered
directly.  The shipped example corpus (clean + deliberately-unsound) is
pinned by ``tests/dsms/test_lint.py`` and the goldens.
"""

from __future__ import annotations

import pytest

from repro.analysis.linter import lint_source
from repro.analysis.sampling_algebra import SamplingFact
from repro.analysis.signatures import SamplerProfile


def rules_of(result):
    return {d.rule for d in result.diagnostics}


def sa2xx(result):
    return {rule for rule in rules_of(result) if rule.startswith("SA2")}


class TestSamplingFactLattice:
    def test_unsampled_bottom(self):
        fact = SamplingFact()
        assert not fact.sampled
        assert fact.scheme == "all" and fact.exchangeable

    def test_single_sampler_keeps_its_scheme(self):
        fact = SamplingFact().compose(
            SamplerProfile("reservoir", "uniform", True), frozenset()
        )
        assert fact.sampled
        assert fact.scheme == "uniform"
        assert fact.exchangeable

    def test_same_family_twice_stays_exchangeable(self):
        profile = SamplerProfile("subset_sum", "weighted", True)
        fact = SamplingFact().compose(profile, frozenset({"len"}))
        fact = fact.compose(profile, frozenset())
        assert fact.families == ("subset_sum",)
        assert fact.exchangeable
        assert fact.condition_columns == frozenset({"len"})

    def test_mixed_families_go_composite(self):
        fact = SamplingFact().compose(
            SamplerProfile("reservoir", "uniform", True), frozenset()
        )
        fact = fact.compose(
            SamplerProfile("subset_sum", "weighted", True), frozenset({"len"})
        )
        assert fact.scheme == "composite"
        assert not fact.exchangeable
        assert fact.families == ("reservoir", "subset_sum")

    def test_corrections_accumulate(self):
        fact = SamplingFact().compose(
            SamplerProfile(
                "subset_sum",
                "weighted",
                True,
                corrections=frozenset({"ssthreshold"}),
            ),
            frozenset(),
        )
        assert fact.corrections == frozenset({"ssthreshold"})


class TestSA201:
    def test_nonlinear_aggregate_under_uniform_sampler(self, registries):
        result = lint_source(
            "SELECT tb, avg(len)\n"
            "FROM TCP\n"
            "WHERE rsample(100) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP",
            registries,
        )
        diags = [d for d in result.diagnostics if d.rule == "SA201"]
        assert diags, result.render()
        # The caret lands on the aggregate call itself.
        assert (diags[0].span.line, diags[0].span.col) == (1, 12)

    def test_unsampled_aggregate_is_fine(self, registries):
        result = lint_source(
            "SELECT tb, avg(len) FROM TCP GROUP BY time/20 as tb", registries
        )
        assert "SA201" not in rules_of(result)

    def test_linear_aggregate_under_uniform_is_fine(self, registries):
        result = lint_source(
            "SELECT tb, sum(len)\n"
            "FROM TCP\n"
            "WHERE rsample(100) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP",
            registries,
        )
        assert sa2xx(result) == set(), result.render()


class TestSA202:
    UNCORRECTED = (
        "SELECT tb, sum(len)\n"
        "FROM TCP\n"
        "WHERE ssample(len, 500) = TRUE\n"
        "GROUP BY time/20 as tb, srcIP"
    )

    def test_weighted_sum_without_correction(self, registries):
        result = lint_source(self.UNCORRECTED, registries)
        assert "SA202" in rules_of(result), result.render()

    def test_exported_correction_silences_it(self, registries):
        corrected = self.UNCORRECTED.replace(
            "sum(len)", "UMAX(sum(len), ssthreshold())"
        )
        result = lint_source(corrected, registries)
        assert "SA202" not in rules_of(result), result.render()

    def test_uniform_scheme_never_fires(self, registries):
        result = lint_source(
            "SELECT tb, count(*)\n"
            "FROM TCP\n"
            "WHERE rsample(100) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP",
            registries,
        )
        assert "SA202" not in rules_of(result)


class TestSA203:
    def test_chained_families(self, registries):
        result = lint_source(
            "SELECT tb, srcIP\n"
            "FROM TCP\n"
            "WHERE rsample(100) = TRUE AND ssample(len, 500) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP, uts",
            registries,
        )
        diags = [d for d in result.diagnostics if d.rule == "SA203"]
        assert diags, result.render()
        # Anchored on the second admission sampler in the WHERE clause.
        assert diags[0].span.line == 3
        assert diags[0].span.col > len("WHERE rsample(100) = TRUE AND ")

    def test_single_family_repeated_is_fine(self, registries):
        result = lint_source(
            "SELECT tb, srcIP\n"
            "FROM TCP\n"
            "WHERE ssample(len, 500) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP, uts",
            registries,
        )
        assert "SA203" not in rules_of(result)


class TestSA204:
    def test_grouping_on_conditioned_column(self, registries):
        result = lint_source(
            "SELECT tb, len, count(*)\n"
            "FROM TCP\n"
            "WHERE ssample(len, 500) = TRUE\n"
            "GROUP BY time/20 as tb, len",
            registries,
        )
        diags = [d for d in result.diagnostics if d.rule == "SA204"]
        assert diags, result.render()
        assert diags[0].span.line == 4  # the GROUP BY column reference

    def test_independent_group_key_is_fine(self, registries):
        result = lint_source(
            "SELECT tb, srcIP, count(*)\n"
            "FROM TCP\n"
            "WHERE ssample(len, 500) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP",
            registries,
        )
        assert "SA204" not in rules_of(result)

    def test_keyed_scheme_exempt(self, registries):
        # Distinct sampling *must* condition on its hashed group key —
        # the shipped example groups by the key it samples on and is clean.
        from pathlib import Path

        text = (
            Path(__file__).resolve().parents[2]
            / "examples/queries/distinct_sample.gsql"
        ).read_text()
        result = lint_source(text, registries)
        assert "SA204" not in rules_of(result), result.render()

    def test_window_variables_exempt(self, registries):
        # tb is ordered (time-derived): it partitions time, not the
        # population, so conditioning on time never fires SA204.
        result = lint_source(
            "SELECT tb, count(*)\n"
            "FROM TCP\n"
            "WHERE ssample(len, 500) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP",
            registries,
        )
        assert "SA204" not in rules_of(result)


class TestPragmaOnDataflowRules:
    def test_sa2xx_suppressed_by_pragma(self, registries):
        result = lint_source(
            "-- lint: disable=SA201,SA202,SA203,SA204\n"
            "SELECT tb, len, avg(len), sum(len)\n"
            "FROM TCP\n"
            "WHERE rsample(100) = TRUE AND ssample(len, 500) = TRUE\n"
            "GROUP BY time/20 as tb, len",
            registries,
        )
        assert sa2xx(result) == set(), result.render()
        assert {"SA201", "SA202", "SA203", "SA204"} <= result.disabled


class TestAnnotations:
    def test_estimator_summary_on_the_plan(self, registries):
        result = lint_source(
            "SELECT tb, UMAX(sum(len), ssthreshold())\n"
            "FROM TCP\n"
            "WHERE ssample(len, 500) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP, uts",
            registries,
        )
        assert result.plan is not None
        sampling = result.plan.annotations["sampling"]
        (estimator,) = [
            e for e in sampling["estimators"] if e["aggregate"] == "sum"
        ]
        assert estimator["linear"] is True
        assert estimator["scheme"] == "weighted"
        assert estimator["corrected"] is True
        assert estimator["unbiased"] is True

    def test_biased_estimator_flagged_in_annotations(self, registries):
        result = lint_source(
            "SELECT tb, avg(len)\n"
            "FROM TCP\n"
            "WHERE rsample(100) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP",
            registries,
        )
        sampling = result.plan.annotations["sampling"]
        (estimator,) = sampling["estimators"]
        assert estimator["aggregate"] == "avg"
        assert estimator["unbiased"] is False

    def test_edge_facts_exported(self, registries):
        result = lint_source(
            "SELECT tb, sum(len)\n"
            "FROM TCP\n"
            "WHERE rsample(100) = TRUE\n"
            "GROUP BY time/20 as tb, srcIP",
            registries,
        )
        edges = result.plan.annotations["sampling"]["edges"]
        # Before the WHERE the stream is unsampled; after it, uniform.
        assert edges["q.source->q.where"]["scheme"] == "all"
        assert edges["q.where->q.group"]["scheme"] == "uniform"
        assert edges["q.where->q.group"]["families"] == ["reservoir"]
