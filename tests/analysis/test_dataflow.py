"""The generic plan-dataflow engine (``repro.analysis.dataflow``).

Covers the graph construction (phase chain mirrors the clauses a query
actually uses), the topological walk, and the fact-propagation engine
with a toy counting analysis — independent of the two real passes that
ride on it.
"""

from __future__ import annotations

import pytest

from repro.analysis.dataflow import (
    DataflowAnalysis,
    PlanGraph,
    PlanNode,
    build_plan_graph,
    run_dataflow,
)
from repro.dsms.parser.planner import compile_query

FULL_QUERY = (
    "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())\n"
    "FROM TCP\n"
    "WHERE ssample(len, 1000) = TRUE\n"
    "GROUP BY time/20 as tb, srcIP, destIP, uts\n"
    "HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE\n"
    "CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE\n"
    "CLEANING BY ssclean_with(sum(len)) = TRUE"
)


def graph_of(sql, registries, name="q"):
    return build_plan_graph(compile_query(sql, registries, query_name=name), name)


class TestBuildPlanGraph:
    def test_full_chain_has_every_phase(self, registries):
        graph = graph_of(FULL_QUERY, registries)
        kinds = [node.kind for node in graph.topological()]
        assert kinds == [
            "source",
            "where",
            "group",
            "aggregate",
            "cleaning",
            "having",
            "select",
            "output",
        ]

    def test_absent_clauses_are_skipped(self, registries):
        graph = graph_of("SELECT len FROM TCP WHERE len > 100", registries)
        kinds = [node.kind for node in graph.topological()]
        assert kinds == ["source", "where", "select", "output"]

    def test_chain_is_linear(self, registries):
        graph = graph_of(FULL_QUERY, registries)
        order = graph.topological()
        for earlier, later in zip(order, order[1:]):
            assert graph.successors(earlier.node_id) == [later]
            assert graph.predecessors(later.node_id) == [earlier]
        assert graph.sources() == [order[0]]

    def test_node_ids_carry_the_query_name(self, registries):
        graph = graph_of("SELECT len FROM TCP", registries, name="talkers")
        assert set(graph.nodes) == {
            "talkers.source",
            "talkers.select",
            "talkers.output",
        }

    def test_clause_exprs_attached(self, registries):
        graph = graph_of(FULL_QUERY, registries)
        where = graph.first_of_kind("where")
        assert [clause for clause, _ in where.exprs] == ["WHERE"]
        cleaning = graph.first_of_kind("cleaning")
        assert [clause for clause, _ in cleaning.exprs] == [
            "CLEANING WHEN",
            "CLEANING BY",
        ]

    def test_schemas_on_the_endpoints(self, registries):
        plan = compile_query("SELECT tb, sum(len) FROM TCP GROUP BY time/20 as tb",
                             registries, query_name="q")
        graph = build_plan_graph(plan)
        assert graph.node("q.source").schema is plan.analyzed.schema
        assert graph.node("q.output").schema is plan.output_schema

    def test_duplicate_node_rejected(self, registries):
        graph = graph_of("SELECT len FROM TCP", registries)
        with pytest.raises(ValueError, match="duplicate plan node"):
            graph.add_node(PlanNode("q.source", "source"))

    def test_cycle_detected(self, registries):
        graph = graph_of("SELECT len FROM TCP", registries)
        graph.add_edge(graph.node("q.output"), graph.node("q.source"))
        with pytest.raises(ValueError, match="cycle"):
            graph.topological()


class _Depth(DataflowAnalysis):
    """Toy pass: the fact is the number of phases crossed so far."""

    def boundary(self, node):
        return 0

    def transfer(self, node, fact):
        return fact + 1

    def join(self, facts):
        return max(facts)


class TestRunDataflow:
    def test_facts_propagate_along_every_edge(self, registries):
        graph = graph_of(FULL_QUERY, registries)
        result = run_dataflow(graph, _Depth())
        order = graph.topological()
        assert result.fact_out_of("q.source") == 0
        assert result.fact_out_of("q.output") == len(order) - 1
        assert len(result.edge_facts) == len(graph.edges)

    def test_fact_into_is_the_upstream_fact(self, registries):
        graph = graph_of("SELECT len FROM TCP WHERE len > 10", registries)
        result = run_dataflow(graph, _Depth())
        assert result.fact_into("q.source") is None
        assert result.fact_into("q.where") == 0
        assert result.fact_into("q.select") == 1

    def test_join_runs_at_fan_in(self, registries):
        graph = graph_of("SELECT len FROM TCP", registries)
        # Graft a second, deeper branch feeding the select node: the join
        # must combine both incoming facts (max depth wins in the toy
        # pass), so select sees depth 1 from the branch, not 0 from the
        # original source.
        extra = graph.add_node(PlanNode("q.source2", "source"))
        hop = graph.add_node(PlanNode("q.where2", "where"))
        graph.add_edge(extra, hop)
        graph.add_edge(hop, graph.node("q.select"))
        result = run_dataflow(graph, _Depth())
        assert result.fact_out_of("q.select") == 2

    def test_default_join_refuses_confluences(self, registries):
        graph = graph_of("SELECT len FROM TCP", registries)
        extra = graph.add_node(PlanNode("q.source2", "source"))
        graph.add_edge(extra, graph.node("q.select"))

        class NoJoin(DataflowAnalysis):
            def boundary(self, node):
                return 0

            def transfer(self, node, fact):
                return fact

        with pytest.raises(NotImplementedError, match="confluence"):
            run_dataflow(graph, NoJoin())


class TestCompileQueryAnnotate:
    def test_annotate_exports_sampling_facts(self, registries):
        plan = compile_query(
            FULL_QUERY, registries, query_name="q", annotate=True
        )
        sampling = plan.annotations["sampling"]
        assert "q.where->q.group" in sampling["edges"]
        assert sampling["estimators"]

    def test_default_compile_stays_bare(self, registries):
        plan = compile_query(FULL_QUERY, registries, query_name="q")
        assert plan.annotations == {}
