"""Shared fixtures for the plan-dataflow analysis tests."""

from __future__ import annotations

import pytest

from repro.analysis.linter import default_lint_registries
from repro.dsms.parser.analyzer import Registries


@pytest.fixture(scope="module")
def registries() -> Registries:
    """The stock lint registries (streams, builtins, every SFUN pack)."""
    return default_lint_registries()
