"""Golden diagnostic reports over the shipped example corpus.

Every ``examples/queries/*.gsql`` is linted twice — default (serial)
and against the ``shards=4,durable`` deployment target — and the full
caret-rendered reports are pinned against checked-in goldens.  Rule
wording, spans, and hints are all part of the contract: regenerate with

    pytest tests/analysis/test_lint_golden.py --update-goldens

after an intentional change to a rule message or an example query.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.execsafety import parse_target
from repro.analysis.linter import lint_source

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples/queries").glob("*.gsql")
)

TARGET_SPEC = "shards=4,durable"


def lint_report(path: Path, registries) -> str:
    """The golden payload: default report + target report for one file."""
    text = path.read_text()
    sections = []
    for title, target in (
        ("default", None),
        (f"target {TARGET_SPEC}", parse_target(TARGET_SPEC)),
    ):
        result = lint_source(text, registries, path.name, target=target)
        body = result.render() if result.diagnostics else "clean"
        sections.append(f"== {title} ==\n{body}")
    return "\n".join(sections) + "\n"


def check_golden(request, name: str, payload: str) -> None:
    path = os.path.join(GOLDEN_DIR, name)
    if request.config.getoption("--update-goldens"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
        pytest.skip(f"rewrote {name}")
    if not os.path.exists(path):
        pytest.fail(
            f"golden {name} missing; run pytest --update-goldens to create it"
        )
    with open(path, "r", encoding="utf-8") as fh:
        expected = fh.read()
    assert payload == expected


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_diagnostics_match_golden(request, registries, path):
    check_golden(request, f"{path.stem}.lint", lint_report(path, registries))


def test_corpus_is_covered():
    # A new example without a golden fails here, not silently.
    assert {p.stem for p in EXAMPLES} >= {
        "subset_sum",
        "reservoir",
        "heavy_hitters",
        "distinct_sample",
        "min_hash",
        "top_talkers",
        "unsound_biased_avg",
        "unsound_unshardable",
    }


def test_at_least_three_rules_per_new_family(request, registries):
    # The acceptance bar: >=3 SA2xx and >=3 SA3xx distinct rules fire
    # somewhere on the corpus, each with span info for caret rendering.
    sa2, sa3 = set(), set()
    target = parse_target(TARGET_SPEC)
    for path in EXAMPLES:
        text = path.read_text()
        for result in (
            lint_source(text, registries, path.name),
            lint_source(text, registries, path.name, target=target),
        ):
            for diag in result.diagnostics:
                if diag.span is None:
                    continue
                if diag.rule.startswith("SA2"):
                    sa2.add(diag.rule)
                if diag.rule.startswith("SA3"):
                    sa3.add(diag.rule)
    assert len(sa2) >= 3, sa2
    assert len(sa3) >= 3, sa3
