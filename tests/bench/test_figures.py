"""The figure-reproduction harness: shapes of the paper's claims.

These are small, fast configurations of the same code EXPERIMENTS.md
records at full size; each test asserts the *direction* of a claim.
"""

import pytest

from repro.bench import figures
from repro.bench.harness import run_actual_sums, run_subset_sum
from repro.bench.workloads import (
    ACCURACY_WINDOW_SECONDS,
    accuracy_trace,
    performance_trace,
    stream_seconds,
)


@pytest.fixture(scope="module")
def accuracy_result():
    return figures.figure2(target=100, duration_seconds=160, rate_scale=0.01)


class TestWorkloads:
    def test_traces_cached(self):
        a = accuracy_trace(20, 0.005, seed=1)
        b = accuracy_trace(20, 0.005, seed=1)
        assert a is b

    def test_stream_seconds(self):
        assert stream_seconds(60, 0.01) == pytest.approx(0.6)

    def test_performance_trace_steady(self):
        trace = performance_trace(5, 0.01, seed=2)
        per_second = {}
        for record in trace:
            per_second[record["time"]] = per_second.get(record["time"], 0) + 1
        rates = list(per_second.values())
        assert max(rates) - min(rates) < 0.1 * 1000


class TestFigure2(object):
    def test_relaxed_tracks_actual(self, accuracy_result):
        ratios = accuracy_result.estimate_ratio(accuracy_result.relaxed)
        for window in accuracy_result.windows[1:]:
            assert 0.85 <= ratios[window] <= 1.15

    def test_nonrelaxed_worse_on_average(self, accuracy_result):
        relaxed = accuracy_result.estimate_ratio(accuracy_result.relaxed)
        nonrelaxed = accuracy_result.estimate_ratio(accuracy_result.nonrelaxed)
        windows = accuracy_result.windows[1:]
        err = lambda r: sum(abs(1 - r[w]) for w in windows) / len(windows)
        assert err(nonrelaxed) > err(relaxed)

    def test_nonrelaxed_never_overestimates_much(self, accuracy_result):
        # The credit-counter estimator is one-sided: under-estimation.
        ratios = accuracy_result.estimate_ratio(accuracy_result.nonrelaxed)
        assert all(ratios[w] <= 1.05 for w in accuracy_result.windows)

    def test_to_text_renders(self, accuracy_result):
        text = accuracy_result.to_text()
        assert "ratio(rel)" in text and str(accuracy_result.windows[0]) in text


class TestFigure3(object):
    def test_relaxed_overadmits_nonrelaxed_underadmits(self, accuracy_result):
        target = accuracy_result.target
        windows = accuracy_result.windows[1:]
        relaxed_over = sum(
            1 for w in windows if accuracy_result.relaxed.admitted.get(w, 0) > target
        )
        nonrelaxed_under = sum(
            1
            for w in windows
            if accuracy_result.nonrelaxed.admitted.get(w, 0) < target
        )
        assert relaxed_over >= len(windows) * 0.8
        assert nonrelaxed_under >= 1

    def test_final_samples_capped_at_target(self, accuracy_result):
        for run in (accuracy_result.relaxed, accuracy_result.nonrelaxed):
            assert all(v <= accuracy_result.target for v in run.outputs.values())


class TestFigure4(object):
    def test_relaxed_uses_more_cleanings(self, accuracy_result):
        windows = accuracy_result.windows[1:]
        relaxed = sum(accuracy_result.relaxed.cleanings.get(w, 0) for w in windows)
        nonrelaxed = sum(
            accuracy_result.nonrelaxed.cleanings.get(w, 0) for w in windows
        )
        assert relaxed > nonrelaxed

    def test_relaxed_cleanings_order_of_log_f(self, accuracy_result):
        # Adapting up from z/10 takes ~log2(10)+1 ~ 4 cleanings per window.
        windows = accuracy_result.windows[1:]
        mean = sum(
            accuracy_result.relaxed.cleanings.get(w, 0) for w in windows
        ) / len(windows)
        assert 1.0 <= mean <= 8.0


@pytest.fixture(scope="module")
def cpu_result():
    return figures.figure5(targets=(100, 1000), duration_seconds=1)


class TestFigure5(object):
    def test_low_level_selection_near_sixty_percent(self, cpu_result):
        for value in cpu_result.low_level.values():
            assert 50.0 <= value <= 70.0

    def test_sampler_small_fraction_of_cpu(self, cpu_result):
        for mapping in (cpu_result.relaxed, cpu_result.nonrelaxed):
            for value in mapping.values():
                assert value < 15.0

    def test_sampling_operator_costs_little_over_basic(self, cpu_result):
        for target in cpu_result.targets:
            extra = cpu_result.relaxed[target] - cpu_result.basic[target]
            assert 0.0 < extra < 5.0

    def test_relaxed_at_most_two_points_over_nonrelaxed(self, cpu_result):
        for target in cpu_result.targets:
            diff = cpu_result.relaxed[target] - cpu_result.nonrelaxed[target]
            assert -0.5 <= diff <= 2.0

    def test_to_text(self, cpu_result):
        assert "SS relaxed %" in cpu_result.to_text()


class TestFigure6(object):
    @pytest.fixture(scope="class")
    def result(self):
        return figures.figure6(targets=(100,), duration_seconds=1)

    def test_prefilter_collapses_low_level_cost(self, result):
        assert result.selection_low_cpu > 50.0
        assert result.prefilter_low_cpu[100] < 15.0

    def test_prefilter_lowers_sampler_cost(self, result):
        assert result.prefilter_fed[100] < result.selection_fed[100]

    def test_to_text(self, result):
        assert "basic-SS" in result.to_text()


class TestSweeps(object):
    def test_gamma_sweep_flat_cpu(self):
        result = figures.gamma_sweep(
            gammas=(1.5, 4.0), target=500, duration_seconds=1
        )
        cpus = [row[1] for row in result.rows]
        assert max(cpus) - min(cpus) < 1.0  # paper: little dependence on gamma
        cleanings = [row[2] for row in result.rows]
        assert cleanings[0] >= cleanings[1]  # smaller gamma, more cleanings

    def test_accuracy_sweep_consistent_across_targets(self):
        result = figures.accuracy_sweep(
            targets=(50, 200), duration_seconds=120, rate_scale=0.01
        )
        relaxed_errors = [row[1] for row in result.rows]
        assert all(err < 0.1 for err in relaxed_errors)

    def test_ablation_relax_factor_monotone_cleanings(self):
        result = figures.ablation_relax_factor(
            factors=(1.0, 10.0), target=100, duration_seconds=120,
            rate_scale=0.01,
        )
        cleanings = {row[0]: row[2] for row in result.rows}
        assert cleanings[10.0] > cleanings[1.0]
        errors = {row[0]: row[1] for row in result.rows}
        assert errors[10.0] < errors[1.0]

    def test_ablation_adjustment_solve_no_worse(self):
        result = figures.ablation_adjustment(
            target=100, duration_seconds=120, rate_scale=0.01
        )
        errors = {row[0]: row[1] for row in result.rows}
        assert errors["solve"] <= errors["aggressive"] + 0.02
