"""Text-table rendering."""

from repro.bench.reporting import format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_float_formatting(self):
        table = format_table(["x"], [[0.123456], [12.3456], [1234.5]])
        assert "0.123" in table
        assert "12.35" in table
        assert "1,234" in table or "1,235" in table

    def test_zero_renders_bare(self):
        assert "0" in format_table(["x"], [[0.0]]).splitlines()[-1]

    def test_strings_pass_through(self):
        table = format_table(["rule"], [["solve"], ["aggressive"]])
        assert "aggressive" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table
