"""The command-line interface."""

import pytest

from repro.cli import main
from repro.streams.persistence import load_trace


@pytest.fixture
def trace_file(tmp_path):
    path = str(tmp_path / "trace.bin")
    rc = main([
        "generate", "--feed", "research", "--seconds", "10",
        "--rate-scale", "0.005", "--seed", "7", "--out", path,
    ])
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_trace(self, trace_file, capsys):
        records = load_trace(trace_file)
        assert records
        assert records[0].schema.name == "TCP"

    def test_deterministic(self, tmp_path):
        paths = []
        for i in range(2):
            path = str(tmp_path / f"t{i}.bin")
            main(["generate", "--seconds", "5", "--seed", "3", "--out", path])
            paths.append(path)
        assert load_trace(paths[0]) == load_trace(paths[1])

    def test_ddos_feed_available(self, tmp_path):
        path = str(tmp_path / "ddos.bin")
        assert main(["generate", "--feed", "ddos", "--seconds", "5",
                     "--out", path]) == 0


class TestQuery:
    def test_plain_aggregation(self, trace_file, capsys):
        rc = main([
            "query", "--trace", trace_file,
            "--sql", "SELECT tb, sum(len) FROM TCP GROUP BY time/5 as tb",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "tb\tsum(len)" or "tb" in out.splitlines()[0]
        assert len(out.splitlines()) >= 3

    def test_sampling_query_with_packs(self, trace_file, capsys):
        rc = main([
            "query", "--trace", trace_file, "--relax-factor", "10",
            "--sql",
            "SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())"
            " FROM TCP WHERE ssample(len, 10) = TRUE"
            " GROUP BY time/5 as tb, srcIP, destIP, uts"
            " HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE"
            " CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE"
            " CLEANING BY ssclean_with(sum(len)) = TRUE",
        ])
        assert rc == 0
        assert capsys.readouterr().out.strip()

    def test_limit_truncates(self, trace_file, capsys):
        rc = main([
            "query", "--trace", trace_file, "--limit", "2",
            "--sql", "SELECT len FROM TCP",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        # An unreadable path surfaces as an error, not a traceback.
        with pytest.raises(Exception):
            main(["query", "--trace", str(tmp_path / "missing.bin"),
                  "--sql", "SELECT len FROM TCP"])

    def test_sharded_matches_serial(self, trace_file, capsys):
        sql = "SELECT tb, srcIP, sum(len) FROM TCP GROUP BY time/5 as tb, srcIP"

        def rows(extra):
            rc = main([
                "query", "--trace", trace_file, "--limit", "100000",
                "--sql", sql, *extra,
            ])
            assert rc == 0
            return sorted(capsys.readouterr().out.splitlines()[1:])

        serial = rows([])
        assert rows(["--shards", "2"]) == serial
        assert rows(["--shards", "2", "--shard-processes"]) == serial

    def test_supervised_matches_serial_and_reports(self, trace_file, capsys):
        sql = "SELECT tb, srcIP, sum(len) FROM TCP GROUP BY time/5 as tb, srcIP"

        def run(extra):
            rc = main([
                "query", "--trace", trace_file, "--limit", "100000",
                "--sql", sql, *extra,
            ])
            assert rc == 0
            captured = capsys.readouterr()
            return sorted(captured.out.splitlines()[1:]), captured.err

        serial, _ = run([])
        rows, err = run(["--shards", "2", "--supervise", "--report"])
        assert rows == serial
        assert "supervision: restarts=0" in err
        assert "stream TCP:" in err

    def test_shed_threshold_reported(self, trace_file, capsys):
        rc = main([
            "query", "--trace", trace_file, "--limit", "0",
            "--shed-threshold", "50",
            "--sql", "SELECT tb, srcIP, sum(len) FROM TCP"
            " GROUP BY time/5 as tb, srcIP",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "shed=" in err

    def test_unshardeable_query_errors_clearly(self, trace_file, capsys):
        rc = main([
            "query", "--trace", trace_file, "--shards", "2",
            "--sql",
            "SELECT tb, b, count(*) FROM TCP"
            " GROUP BY time/5 as tb, srcIP/2 as b",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot shard" in err
        assert "lint --target" in err  # points at the static check


class TestLint:
    CLEAN_SQL = "SELECT tb, sum(len) FROM TCP GROUP BY time/5 as tb"
    WARN_SQL = "SELECT srcIP FROM TCP GROUP BY srcIP"
    ERROR_SQL = "SELECT foo(len) FROM TCP"

    def test_sql_clean(self, capsys):
        assert main(["lint", "--sql", self.CLEAN_SQL]) == 0
        assert "ok" in capsys.readouterr().out

    def test_sql_warning_exits_zero(self, capsys):
        assert main(["lint", "--sql", self.WARN_SQL]) == 0
        captured = capsys.readouterr()
        assert "SA001" in captured.out
        assert "warning(s)" in captured.err

    def test_sql_error_exits_one(self, capsys):
        assert main(["lint", "--sql", self.ERROR_SQL]) == 1
        assert "SA021" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, capsys):
        assert main(["lint", "--strict", "--sql", self.WARN_SQL]) == 1

    def test_file_input(self, tmp_path, capsys):
        path = tmp_path / "q.gsql"
        path.write_text(self.WARN_SQL + "\n")
        assert main(["lint", str(path)]) == 0
        assert str(path) in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys):
        assert main(["lint", "/nonexistent/q.gsql"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_no_input_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_both_inputs_exits_two(self, tmp_path, capsys):
        path = tmp_path / "q.gsql"
        path.write_text(self.CLEAN_SQL)
        assert main(["lint", str(path), "--sql", self.CLEAN_SQL]) == 2

    def test_caret_rendering(self, capsys):
        main(["lint", "--sql", "SELECT len/0 FROM TCP"])
        out = capsys.readouterr().out
        assert "SA007" in out
        assert "^" in out

    def test_example_queries_are_clean(self, capsys):
        import glob
        import os

        files = sorted(glob.glob("examples/queries/*.gsql"))
        assert files, "example queries missing"
        for path in files:
            # Exit 0 for the whole corpus: the unsound_* counterexamples
            # only *warn* under the default (serial) target.
            assert main(["lint", path]) == 0, path
            out = capsys.readouterr().out
            if os.path.basename(path) == "unsound_biased_avg.gsql":
                # SA2xx counterexample: warns under the default target.
                assert "warning" in out, path
            else:
                # unsound_unshardable only errs under --target; it is
                # clean as a serial query, like every sound example.
                assert "ok" in out, path


class TestQueryLintIntegration:
    WARN_SQL = "SELECT srcIP, sum(len) FROM TCP GROUP BY srcIP"

    def test_warning_on_stderr_query_still_runs(self, trace_file, capsys):
        rc = main(["query", "--trace", trace_file, "--sql", self.WARN_SQL])
        assert rc == 0
        captured = capsys.readouterr()
        assert "SA001" in captured.err
        assert "rows" in captured.err  # the query actually ran

    def test_no_lint_suppresses(self, trace_file, capsys):
        rc = main(["query", "--no-lint", "--trace", trace_file,
                   "--sql", self.WARN_SQL])
        assert rc == 0
        assert "SA001" not in capsys.readouterr().err

    def test_strict_refuses_to_run(self, trace_file, capsys):
        rc = main(["query", "--strict", "--trace", trace_file,
                   "--sql", self.WARN_SQL])
        assert rc == 1
        captured = capsys.readouterr()
        assert "SA001" in captured.err
        assert "rows" not in captured.err  # never executed

    def test_pragma_satisfies_strict(self, trace_file, capsys):
        rc = main(["query", "--strict", "--trace", trace_file,
                   "--sql", "-- lint: disable=SA001\n" + self.WARN_SQL])
        assert rc == 0


class TestExplain:
    def test_explain_sampling_query(self, capsys):
        rc = main([
            "explain", "--sql",
            "SELECT tb, srcIP FROM TCP WHERE rsample(5) = TRUE"
            " GROUP BY time/5 as tb, srcIP, uts"
            " HAVING rsfinal_clean() = TRUE"
            " CLEANING WHEN rsdo_clean(count_distinct$()) = TRUE"
            " CLEANING BY rsclean_with() = TRUE",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Query kind : sampling" in out
        assert "reservoir_sampling_state" in out

    def test_explain_selection(self, capsys):
        rc = main(["explain", "--sql", "SELECT len FROM TCP WHERE len > 9"])
        assert rc == 0
        assert "selection" in capsys.readouterr().out
