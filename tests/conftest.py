"""Shared fixtures: registries, small traces, DSMS factories.

Also a per-test timeout fallback: resilience tests exercise deadlock
fixes, and a regression there should fail the test, not hang the suite.
When the ``pytest-timeout`` plugin is installed (CI) it owns timeouts;
otherwise a SIGALRM-based hookwrapper enforces the same ceiling on
POSIX.
"""

from __future__ import annotations

import signal

import pytest

_DEFAULT_TEST_TIMEOUT = 120.0


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite trace-event golden files (tests/obs/goldens/) from"
        " the current run instead of comparing against them",
    )

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_HAVE_SIGALRM = hasattr(signal, "SIGALRM")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _HAVE_PYTEST_TIMEOUT or not _HAVE_SIGALRM:
        yield
        return
    marker = item.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else _DEFAULT_TEST_TIMEOUT

    def _alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds:.0f}s per-test timeout (fallback"
            " SIGALRM enforcement; install pytest-timeout for rich output)"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

from repro.dsms.aggregates import default_aggregate_registry
from repro.dsms.functions import default_function_registry
from repro.dsms.parser import Registries
from repro.dsms.runtime import Gigascope
from repro.dsms.stateful import StatefulLibrary
from repro.streams.schema import PKT_SCHEMA, TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.core.superaggregates import default_superaggregate_registry


@pytest.fixture
def registries() -> Registries:
    """Default registries with both packet schemas registered."""
    return Registries(
        schemas={"PKT": PKT_SCHEMA, "TCP": TCP_SCHEMA},
        scalars=default_function_registry(),
        aggregates=default_aggregate_registry(),
        superaggregates=default_superaggregate_registry(),
        stateful=StatefulLibrary(),
    )


@pytest.fixture
def small_trace():
    """A short deterministic bursty trace (three 20 s windows)."""
    config = TraceConfig(duration_seconds=60, rate_scale=0.005, seed=99)
    return list(research_center_feed(config))


@pytest.fixture
def gigascope() -> Gigascope:
    """A fresh DSMS instance with the TCP stream registered."""
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    return gs
