"""Shared fixtures: registries, small traces, DSMS factories."""

from __future__ import annotations

import pytest

from repro.dsms.aggregates import default_aggregate_registry
from repro.dsms.functions import default_function_registry
from repro.dsms.parser import Registries
from repro.dsms.runtime import Gigascope
from repro.dsms.stateful import StatefulLibrary
from repro.streams.schema import PKT_SCHEMA, TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.core.superaggregates import default_superaggregate_registry


@pytest.fixture
def registries() -> Registries:
    """Default registries with both packet schemas registered."""
    return Registries(
        schemas={"PKT": PKT_SCHEMA, "TCP": TCP_SCHEMA},
        scalars=default_function_registry(),
        aggregates=default_aggregate_registry(),
        superaggregates=default_superaggregate_registry(),
        stateful=StatefulLibrary(),
    )


@pytest.fixture
def small_trace():
    """A short deterministic bursty trace (three 20 s windows)."""
    config = TraceConfig(duration_seconds=60, rate_scale=0.005, seed=99)
    return list(research_center_feed(config))


@pytest.fixture
def gigascope() -> Gigascope:
    """A fresh DSMS instance with the TCP stream registered."""
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    return gs
