"""Quota shedding is unbiased: statistics over the admitted stream.

Two claims about per-tenant quota shedding (docs/SERVING.md):

1. **Sub-equivalence** — shedding refuses whole batches at the serving
   edge, so a quota'd query equals a solo run over exactly the admitted
   records; nothing inside a batch is ever half-applied.
2. **No sampling bias** — a uniform reservoir query stays uniform over
   whatever the quota admits: shedding selects a *prefix pattern* of
   batches deterministically from the cost ledger, and the reservoir is
   uniform over any stream it is offered, so the sampled group positions
   (binned over the admitted group arrival order) must pass the same
   chi-squared flatness test the raw samplers do
   (tests/algorithms/test_statistical.py).
"""

from repro.dsms.cost import CostModel
from repro.dsms.runtime import Gigascope
from repro.serving.server import StandingQueryEngine, TenantQuota
from repro.streams.schema import TCP_SCHEMA
from repro.algorithms.bindings import reservoir_library

from tests.serving.conftest import instance_state

# Chi-squared critical value, df = 19, alpha = 0.001 (same bar as
# tests/algorithms/test_statistical.py).
CHI2_CRIT_DF19 = 43.82
NBINS = 20
TRIALS = 30
SAMPLE = 50
#: ~half the reservoir query's ~18k cycles/record: the tenant settles
#: into shedding roughly every other batch.
QUOTA = 9000.0
BATCH = 64

RESERVOIR_Q = """
SELECT tb, srcIP, destIP, uts
FROM TCP
WHERE rsample({n}) = TRUE
GROUP BY time/20 as tb, srcIP, destIP, uts
HAVING rsfinal_clean() = TRUE
CLEANING WHEN rsdo_clean(count_distinct$()) = TRUE
CLEANING BY rsclean_with() = TRUE
""".format(n=SAMPLE)


def make_seeded_factory(seed):
    def factory():
        gs = Gigascope(cost_model=CostModel())
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(reservoir_library(seed=seed))
        return gs

    return factory


def quota_run(records, seed):
    """One quota'd serve; returns (served query, admitted records)."""
    engine = StandingQueryEngine(
        make_seeded_factory(seed),
        quotas={"t": TenantQuota(cycles_per_record=QUOTA)},
    )
    sq = engine.register(RESERVOIR_Q, name="q", tenant="t")
    admitted = []
    shed_before = 0
    for start in range(0, len(records), BATCH):
        batch = records[start : start + BATCH]
        engine.feed(batch)
        shed_now = sq.instance.metrics.value(
            "stream_quota_shed_total", stream="TCP"
        )
        if shed_now == shed_before:
            admitted.extend(batch)
        shed_before = shed_now
    engine.close()
    return sq, admitted


def group_arrival_order(admitted):
    """First-occurrence order of the reservoir's group keys."""
    order = []
    seen = set()
    for record in admitted:
        values = dict(zip(record.schema.names, record.values))
        key = (
            values["time"] // 20,
            values["srcIP"],
            values["destIP"],
            values["uts"],
        )
        if key not in seen:
            seen.add(key)
            order.append(key)
    return order


class TestQuotaSubEquivalence:
    def test_quota_run_equals_solo_over_admitted(self, records):
        sq, admitted = quota_run(records, seed=0xA5A5)
        assert 0 < len(admitted) < len(records)
        solo = make_seeded_factory(0xA5A5)()
        solo.add_query(RESERVOIR_Q, name="q")
        solo.start()
        for start in range(0, len(admitted), BATCH):
            solo.feed(admitted[start : start + BATCH])
        solo.finish()
        solo_rows = instance_state(solo, "q")[0]
        served_rows = instance_state(sq.instance, "q")[0]
        assert served_rows == solo_rows


class TestQuotaSamplingUnbiased:
    def test_chi_squared_uniform_over_admitted_groups(self, records):
        counts = [0.0] * NBINS
        expected = [0.0] * NBINS
        for trial in range(TRIALS):
            sq, admitted = quota_run(records, seed=trial)
            order = group_arrival_order(admitted)
            total = len(order)
            position = {key: index for index, key in enumerate(order)}
            rows = sq.instance.query("q").results
            sampled = min(SAMPLE, total)
            assert len(rows) == sampled
            for row in rows:
                key = tuple(row.values)
                bin_index = position[key] * NBINS // total
                counts[bin_index] += 1
            for index in range(total):
                expected[index * NBINS // total] += sampled / total
        chi2 = sum(
            (count - expect) ** 2 / expect
            for count, expect in zip(counts, expected)
        )
        assert chi2 < CHI2_CRIT_DF19, (chi2, counts)
