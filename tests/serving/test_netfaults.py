"""The hardened HTTP plane vs. misbehaving clients, and graceful drain.

The server's HTTP endpoint shares the event loop with the feed loop, so
these tests assert two things at once for every network fault (driven
by :mod:`repro.testing.netfaults`): the hostile client gets a bounded,
structured refusal, *and* the feed keeps flowing — no slow-loris, torn
request, oversized body, or mid-response disconnect ever stalls a
standing query.
"""

import asyncio
import json

from repro.serving.server import (
    DRAIN_EXIT_CODE,
    HttpLimits,
    QueryServer,
    StandingQueryEngine,
)
from repro.testing import netfaults

from tests.serving.conftest import (
    BATCH,
    EXAMPLE_TEXTS,
    make_instance,
    served_state,
    solo_state,
)

SELECTION = EXAMPLE_TEXTS["big_flows"]

#: tight limits so fault paths trip in test time, not wall-clock minutes
LIMITS = HttpLimits(
    read_timeout=0.4,
    write_timeout=0.4,
    max_body_bytes=4096,
    max_header_bytes=1024,
    max_connections=2,
)


def run(coro):
    return asyncio.run(coro)


async def request_raw(port, raw):
    """One well-formed request; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw.encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body


def make_server(limits=LIMITS, **kwargs):
    engine = StandingQueryEngine(make_instance)
    return engine, QueryServer(engine, batch_size=BATCH, limits=limits, **kwargs)


class TestHostileClients:
    def test_slow_loris_is_cut_off_and_the_feed_completes(self, records):
        """A byte-at-a-time client is disconnected at the read deadline
        while ingest finishes the whole stream at full speed."""

        async def scenario():
            engine, server = make_server()
            sq = engine.register(SELECTION, name="q")
            _, port = await server.start_http()
            loris = asyncio.create_task(
                netfaults.slow_loris(port=port, host="127.0.0.1")
            )
            consumed = await server.ingest(records, close=True)
            verdict = await loris
            await server.stop_http()
            return sq, consumed, verdict, engine

        sq, consumed, verdict, engine = run(scenario())
        assert consumed == len(records)
        assert verdict in (408, None)  # refused or dropped, never served
        assert served_state(sq) == solo_state(SELECTION, records)
        assert engine.metrics.value(
            "serving_http_timeouts_total", phase="read"
        ) >= 1

    def test_disconnect_mid_response_never_stalls_the_server(self, records):
        """A client that reads a few bytes and sends RST leaves the
        handler aborted, the loop live, and the next request healthy."""

        async def scenario():
            engine, server = make_server()
            engine.register(SELECTION, name="q")
            _, port = await server.start_http()
            await server.ingest(records[:512], close=False)
            got = await netfaults.disconnect_mid_response(
                "127.0.0.1", port, path="/metrics", read_bytes=32
            )
            # The server is still fully alive afterwards.
            status, _, body = await request_raw(
                port, "GET /healthz HTTP/1.1\r\n\r\n"
            )
            await server.stop_http()
            return got, status, json.loads(body)

        got, status, health = run(scenario())
        assert got > 0
        assert status == 200
        assert health["consumed"] == 512

    def test_torn_request_is_answered_with_silence(self, records):
        async def scenario():
            engine, server = make_server()
            _, port = await server.start_http()
            back = await netfaults.torn_request("127.0.0.1", port)
            status, _, _ = await request_raw(
                port, "GET /healthz HTTP/1.1\r\n\r\n"
            )
            await server.stop_http()
            return back, status

        back, status = run(scenario())
        assert back == b""  # nothing to answer: no request ever existed
        assert status == 200

    def test_oversized_body_is_refused_before_it_is_read(self):
        async def scenario():
            engine, server = make_server()
            _, port = await server.start_http()
            verdict = await netfaults.oversized_body(
                "127.0.0.1", port, declared=1 << 30
            )
            await server.stop_http()
            return verdict

        assert run(scenario()) == 413

    def test_oversized_headers_are_refused(self):
        async def scenario():
            engine, server = make_server()
            _, port = await server.start_http()
            verdict = await netfaults.oversized_headers(
                "127.0.0.1", port, header_bytes=1 << 15
            )
            await server.stop_http()
            return verdict

        assert run(scenario()) in (431, None)

    def test_connection_flood_sheds_with_503(self):
        async def scenario():
            engine, server = make_server()
            _, port = await server.start_http()
            statuses = await netfaults.flood(
                "127.0.0.1", port, connections=4, hold=0.1
            )
            await server.stop_http()
            return statuses, engine

        statuses, engine = run(scenario())
        assert statuses[-1] == 503  # the probe, over the cap of 2
        assert engine.metrics.value("serving_http_overload_total") >= 1

    def test_cancelled_handler_aborts_the_connection_cleanly(self):
        """Stopping the server mid-request cancels the handler; the
        CancelledError path aborts the transport and re-raises instead
        of leaking a half-open connection or a traceback."""

        class FakeTransport:
            aborted = False

            def abort(self):
                self.aborted = True

        class FakeWriter:
            def __init__(self):
                self.transport = FakeTransport()

            def write(self, data):
                pass

            async def drain(self):
                pass

            def close(self):
                pass

            async def wait_closed(self):
                pass

        async def scenario():
            engine, server = make_server(
                limits=HttpLimits(read_timeout=30.0)
            )
            reader = asyncio.StreamReader()  # never fed: handler blocks
            writer = FakeWriter()
            task = asyncio.create_task(server._handle(reader, writer))
            await asyncio.sleep(0.05)
            task.cancel()
            try:
                await task
                cancelled = False
            except asyncio.CancelledError:
                cancelled = True
            return cancelled, writer.transport.aborted, server

        cancelled, aborted, server = run(scenario())
        assert cancelled  # the cancellation propagated
        assert aborted  # ...after the transport was torn down
        assert server._connections == 0  # and the slot was released


class TestStructuredErrors:
    def test_error_bodies_are_machine_readable(self, records):
        async def scenario():
            engine, server = make_server()
            _, port = await server.start_http()
            results = {}
            for label, raw in [
                ("no_route", "GET /nope HTTP/1.1\r\n\r\n"),
                ("unknown_query", "DELETE /queries/ghost HTTP/1.1\r\n\r\n"),
                ("bad_json", "POST /queries HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"),
                ("malformed_request_line", "BOGUS\r\n\r\n"),
                ("bad_content_length", "GET /healthz HTTP/1.1\r\nContent-Length: pony\r\n\r\n"),
            ]:
                status, _, body = await request_raw(port, raw)
                results[label] = (status, json.loads(body))
            await server.stop_http()
            return results

        results = run(scenario())
        expected_status = {
            "no_route": 404,
            "unknown_query": 404,
            "bad_json": 400,
            "malformed_request_line": 400,
            "bad_content_length": 400,
        }
        for label, (status, body) in results.items():
            assert status == expected_status[label], label
            assert body["error"]["status"] == status
            assert body["error"]["reason"] == label
            assert body["error"]["detail"]

    def test_metrics_content_type_is_prometheus_exposition(self, records):
        async def scenario():
            engine, server = make_server()
            engine.register(SELECTION, name="q")
            await server.ingest(records[:256], close=False)
            _, port = await server.start_http()
            status, headers, _ = await request_raw(
                port, "GET /metrics HTTP/1.1\r\n\r\n"
            )
            await server.stop_http()
            return status, headers

        status, headers = run(scenario())
        assert status == 200
        assert headers["content-type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )


class TestGracefulDrain:
    def test_post_drain_flips_readyz_stops_ingest_and_commits(
        self, tmp_path, records
    ):
        """``POST /drain`` mid-ingest: readiness flips to 503, the feed
        stops at a batch boundary, windows flush, the final commit lands
        — and a resume of the journal reads no input at all."""
        from repro.serving.journal import ServingJournal
        from repro.serving.server import drive, resume_serving

        path = str(tmp_path / "serve.wal")

        async def scenario():
            engine = StandingQueryEngine(
                make_instance, journal=ServingJournal(path, fresh=True)
            )
            engine.register(SELECTION, name="q", qid="sqA")
            server = QueryServer(
                engine, batch_size=BATCH, commit_interval=2,
                pace=0.01, limits=LIMITS,
            )
            _, port = await server.start_http()
            ingest = asyncio.create_task(server.ingest(records, close=True))
            await asyncio.sleep(0.05)  # a few batches in

            status, _, _ = await request_raw(
                port, "GET /readyz HTTP/1.1\r\n\r\n"
            )
            assert status == 200
            status, _, body = await request_raw(
                port, "POST /drain HTTP/1.1\r\n\r\n"
            )
            assert status == 202
            status, _, _ = await request_raw(
                port, "GET /readyz HTTP/1.1\r\n\r\n"
            )
            assert status == 503
            # Draining refuses new registrations with 503, not 4xx/5xx.
            payload = json.dumps({"query": SELECTION})
            status, _, _ = await request_raw(
                port,
                f"POST /queries HTTP/1.1\r\nContent-Length: {len(payload)}"
                f"\r\n\r\n{payload}",
            )
            assert status == 503
            consumed = await ingest
            # /healthz stays 200 after the drain — liveness ≠ readiness.
            status, _, _ = await request_raw(
                port, "GET /healthz HTTP/1.1\r\n\r\n"
            )
            assert status == 200
            await server.stop_http()
            return engine, server, consumed

        engine, server, consumed = run(scenario())
        assert server.drained
        assert engine.closed
        assert consumed < len(records)  # it really stopped early
        assert consumed % BATCH == 0  # at a batch boundary
        assert engine.metrics.value(
            "serving_drains_total", reason="http"
        ) == 1

        def no_records():
            raise AssertionError("a drained serve must not re-read input")
            yield  # pragma: no cover

        resumed = resume_serving(make_instance, path, no_records())
        assert resumed.closed
        assert served_state(resumed.lookup("sqA")) == served_state(
            engine.lookup("sqA")
        )
        # And the drained prefix is exactly an honest short serve.
        oracle = StandingQueryEngine(make_instance)
        oracle.register(SELECTION, name="q", qid="sqA")
        drive(oracle, records[:consumed], batch_size=BATCH)
        assert served_state(engine.lookup("sqA")) == served_state(
            oracle.lookup("sqA")
        )

    def test_request_drain_is_idempotent(self, records):
        async def scenario():
            engine, server = make_server()
            server.request_drain("SIGTERM")
            server.request_drain("SIGTERM")
            consumed = await server.ingest(records, close=True)
            return engine, server, consumed

        engine, server, consumed = run(scenario())
        assert consumed == 0  # drain preceded the first batch
        assert server.drained
        assert engine.closed
        assert engine.metrics.value(
            "serving_drains_total", reason="SIGTERM"
        ) == 1

    def test_drain_exit_code_is_distinct(self):
        assert DRAIN_EXIT_CODE == 3

    def test_signal_handlers_refuse_off_main_thread(self):
        """Embedding guard: a worker thread running the loop must not
        try to own process signals (satellite: non-main-thread guard)."""
        import threading

        outcome = {}

        def worker():
            async def scenario():
                engine, server = make_server()
                outcome["installed"] = server.install_signal_handlers()

            asyncio.run(scenario())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert outcome["installed"] is False

    def test_signal_handlers_refuse_without_a_running_loop(self):
        engine, server = make_server()
        assert server.install_signal_handlers() is False

    def test_signal_handlers_install_on_the_main_thread_loop(self):
        async def scenario():
            engine, server = make_server()
            installed = server.install_signal_handlers()
            # Clean up so the test process keeps default dispositions.
            if installed:
                loop = asyncio.get_running_loop()
                import signal as _signal

                loop.remove_signal_handler(_signal.SIGTERM)
                loop.remove_signal_handler(_signal.SIGINT)
            return installed

        assert run(scenario()) is True
