"""Shared fixtures for the serving tests: factories, feeds, solo oracles.

The serving layer's whole correctness claim is *byte-identity to solo
runs*: whatever queries are registered, however they share, whatever
arrives or leaves mid-stream, each query's rows, metric counters, and
cost accounts must equal a private serial run of the same text over the
records it was subscribed for.  Every test in this package phrases its
assertion through :func:`solo_state` / :func:`served_state` so "equal"
always means the same three things.
"""

from __future__ import annotations

import glob
import os
from typing import Dict, List, Optional, Tuple

import pytest

from repro.dsms.cost import CostModel
from repro.dsms.runtime import Gigascope
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.algorithms.bindings import (
    basic_subset_sum_library,
    distinct_sampling_library,
    heavy_hitters_library,
    reservoir_library,
    subset_sum_library,
)

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "queries"
)
#: every shipped example, including the unsound_* lint counterexamples —
#: the server must serve them all (unsound_unshardable exercises the
#: private-feed path: a stateful selection cannot share).
EXAMPLE_PATHS = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.gsql")))
EXAMPLE_TEXTS: Dict[str, str] = {}
for _path in EXAMPLE_PATHS:
    with open(_path, "r", encoding="utf-8") as _fh:
        EXAMPLE_TEXTS[os.path.splitext(os.path.basename(_path))[0]] = _fh.read()

BATCH = 128


def make_instance() -> Gigascope:
    """One solo-shaped instance: private cost model + metrics registry."""
    gs = Gigascope(cost_model=CostModel())
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
    gs.use_stateful_library(basic_subset_sum_library())
    gs.use_stateful_library(reservoir_library())
    gs.use_stateful_library(heavy_hitters_library())
    gs.use_stateful_library(distinct_sampling_library())
    return gs


@pytest.fixture(scope="session")
def records() -> List:
    config = TraceConfig(duration_seconds=10, rate_scale=0.01, seed=7)
    return list(research_center_feed(config))


@pytest.fixture(scope="session")
def big_records() -> List:
    config = TraceConfig(duration_seconds=30, rate_scale=0.01, seed=3)
    return list(research_center_feed(config))


#: (rows, comparable metric series, cost accounts) — the identity basis.
State = Tuple[tuple, tuple, tuple]


def instance_state(gs: Gigascope, name: str) -> State:
    rows = tuple(
        (row.schema.names, tuple(row.values))
        for row in gs.query(name).results
    )
    metrics = tuple(sorted(gs.metrics.comparable_items()))
    cost = tuple(sorted(gs.cost.accounts().items()))
    return rows, metrics, cost


def solo_state(
    text: str,
    records: List,
    name: str = "q",
    batch_size: int = BATCH,
    finish: bool = True,
) -> State:
    """The oracle: one private serial run of ``text`` over ``records``."""
    gs = make_instance()
    gs.add_query(text, name=name)
    gs.start()
    for start in range(0, len(records), batch_size):
        gs.feed(records[start : start + batch_size])
    if finish:
        gs.finish()
    return instance_state(gs, name)


def served_state(sq) -> State:
    return instance_state(sq.instance, sq.name)


_SOLO_CACHE: Dict[tuple, State] = {}


def solo_state_cached(
    text: str, records_key: str, records: List, name: str = "q"
) -> State:
    """Memoised :func:`solo_state` — the 100-variant test reuses oracles."""
    key = (text, records_key, name)
    if key not in _SOLO_CACHE:
        _SOLO_CACHE[key] = solo_state(text, records, name=name)
    return _SOLO_CACHE[key]
