"""Engine registry semantics, quotas, metrics export, and the HTTP plane."""

import asyncio
import json

import pytest

from repro.errors import ExecutionError
from repro.obs.export import render_prometheus
from repro.serving.journal import ServingJournal, split_log
from repro.serving.server import (
    QueryServer,
    StandingQueryEngine,
    TenantQuota,
    drive,
    resume_serving,
)

from tests.serving.conftest import (
    BATCH,
    EXAMPLE_TEXTS,
    make_instance,
    served_state,
    solo_state,
)

SELECTION = "SELECT time, srcIP, destIP, len FROM TCP WHERE len > 1000"


class TestRegistry:
    def test_ids_are_assigned_in_order(self):
        engine = StandingQueryEngine(make_instance)
        a = engine.register(SELECTION, name="q")
        b = engine.register(SELECTION, name="q")
        assert (a.qid, b.qid) == ("sq1", "sq2")
        assert [sq.qid for sq in engine.queries()] == ["sq1", "sq2"]

    def test_duplicate_qid_is_refused(self):
        engine = StandingQueryEngine(make_instance)
        engine.register(SELECTION, name="q", qid="mine")
        with pytest.raises(ExecutionError, match="already in use"):
            engine.register(SELECTION, name="q", qid="mine")

    def test_unregister_twice_is_refused(self):
        engine = StandingQueryEngine(make_instance)
        sq = engine.register(SELECTION, name="q")
        engine.unregister(sq.qid)
        with pytest.raises(ExecutionError, match="already retired"):
            engine.unregister(sq.qid)

    def test_unknown_qid_is_refused(self):
        engine = StandingQueryEngine(make_instance)
        with pytest.raises(ExecutionError, match="unknown standing query"):
            engine.unregister("nope")

    def test_bad_query_never_joins_the_set(self):
        engine = StandingQueryEngine(make_instance)
        with pytest.raises(Exception):
            engine.register("SELECT nope FROM Missing", name="q")
        assert engine.queries() == []

    def test_closed_engine_refuses_everything(self, records):
        engine = StandingQueryEngine(make_instance)
        engine.register(SELECTION, name="q")
        drive(engine, records[:256], batch_size=BATCH)
        assert engine.closed
        with pytest.raises(ExecutionError, match="closed"):
            engine.register(SELECTION, name="q")
        with pytest.raises(ExecutionError, match="closed"):
            engine.feed(records[:10])

    def test_retired_query_keeps_its_results(self, records):
        engine = StandingQueryEngine(make_instance)
        sq = engine.register(SELECTION, name="q")
        engine.feed(records[:256])
        engine.unregister(sq.qid)
        engine.feed(records[256:512])
        assert sq.unregistered_at == 256
        assert served_state(sq) == solo_state(SELECTION, records[:256])


class TestSharingDecisions:
    def test_identical_selections_group(self):
        engine = StandingQueryEngine(make_instance)
        a = engine.register(SELECTION, name="q")
        b = engine.register(SELECTION, name="q")
        c = engine.register(
            "SELECT time, srcIP, destIP, len FROM TCP WHERE len > 999", name="q"
        )
        assert a.signature == b.signature
        assert a.signature != c.signature
        assert len(engine.report()["shared_groups"]) == 2

    def test_share_disabled_reason(self):
        engine = StandingQueryEngine(make_instance, share=False)
        sq = engine.register(SELECTION, name="q")
        assert sq.signature is None
        assert "disabled" in sq.share_reason

    def test_describe_carries_the_reason(self):
        engine = StandingQueryEngine(make_instance)
        sq = engine.register(EXAMPLE_TEXTS["unsound_unshardable"], name="q")
        described = sq.describe()
        assert described["shared"] is False
        assert "stateful selection" in described["share_reason"]


class TestTenantQuotas:
    def test_over_budget_tenant_sheds_and_others_do_not(self, records):
        engine = StandingQueryEngine(
            make_instance,
            quotas={"starved": TenantQuota(cycles_per_record=500.0)},
        )
        starved = engine.register(SELECTION, name="q", tenant="starved")
        healthy = engine.register(SELECTION, name="q", tenant="healthy")
        drive(engine, records, batch_size=BATCH)
        shed = starved.instance.metrics.value(
            "stream_quota_shed_total", stream="TCP"
        )
        assert shed > 0
        assert healthy.instance.metrics.value(
            "stream_quota_shed_total", stream="TCP"
        ) == 0
        assert served_state(healthy) == solo_state(SELECTION, records)
        # Conservation on the quota'd instance: every offered record is
        # ingested or refused at the serving edge.
        m = starved.instance.metrics
        assert m.value("stream_records_total", stream="TCP") == len(records)
        assert len(records) == (
            m.total("stream_ingested_total") + shed
        )
        ledger = engine.report()["tenants"]["starved"]
        assert ledger["offered"] == len(records)
        assert ledger["spent_cycles"] <= 500.0 * len(records) + 850.0 * BATCH

    def test_bare_number_quota_is_accepted(self):
        engine = StandingQueryEngine(make_instance, quotas={"t": 1234})
        assert engine.quotas["t"] == TenantQuota(cycles_per_record=1234.0)

    def test_quota_charges_the_conservation_term(self, records):
        engine = StandingQueryEngine(
            make_instance, quotas={"t": TenantQuota(cycles_per_record=500.0)}
        )
        sq = engine.register(SELECTION, name="q", tenant="t")
        drive(engine, records, batch_size=BATCH)
        shed = sq.instance.metrics.value("stream_quota_shed_total", stream="TCP")
        assert shed > 0
        accounts = sq.instance.cost.accounts()
        assert accounts["TCP"] >= sq.instance.cost.book.quota_shed * shed


class TestMetricsExport:
    def test_export_stamps_serve_id_and_tenant(self, records):
        engine = StandingQueryEngine(make_instance)
        engine.register(SELECTION, name="q", tenant="acme")
        engine.register(EXAMPLE_TEXTS["reservoir"], name="q", tenant="beta")
        drive(engine, records[:512], batch_size=BATCH)
        combined = engine.export_metrics()
        labels = {
            frozenset(dict(series.labels).items())
            for series in combined.series()
        }
        flat = [dict(pairs) for pairs in labels]
        assert any(d.get("serve_id") == "sq1" and d.get("tenant") == "acme" for d in flat)
        assert any(d.get("serve_id") == "sq2" and d.get("tenant") == "beta" for d in flat)
        text = render_prometheus(combined)
        assert 'serve_id="sq1"' in text and 'tenant="acme"' in text
        assert "serving_records_total" in text

    def test_engine_series_track_the_registry(self, records):
        engine = StandingQueryEngine(make_instance)
        a = engine.register(SELECTION, name="q")
        engine.register(SELECTION, name="q")
        assert engine.metrics.value("serving_active_queries") == 2
        assert engine.metrics.value("serving_shared_groups") == 1
        engine.unregister(a.qid)
        assert engine.metrics.value("serving_active_queries") == 1
        drive(engine, records[:256], batch_size=BATCH)
        assert engine.metrics.value("serving_records_total") == 256


class TestJournalFormat:
    def test_version_mismatch_is_refused(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        journal = ServingJournal(path, fresh=True)
        journal._journal.append({"serving_version": 99, "kind": "commit"})
        journal.close()
        with pytest.raises(ValueError, match="version 99"):
            ServingJournal.read(path)

    def test_split_log_dedupes_resume_duplicates(self):
        entries = [
            {"kind": "register", "qid": "a", "offset": 0},
            {"kind": "commit", "consumed": 100},
            {"kind": "register", "qid": "b", "offset": 150},
            {"kind": "register", "qid": "b", "offset": 150},  # resume dup
            {"kind": "unregister", "qid": "a", "offset": 200},
        ]
        replayed, commit, pending = split_log(entries)
        assert [e["qid"] for e in replayed] == ["a"]
        assert commit["consumed"] == 100
        assert [(e["kind"], e["qid"]) for e in pending] == [
            ("register", "b"),
            ("unregister", "a"),
        ]

    def test_resume_without_any_commit_replays_from_scratch(
        self, tmp_path, records
    ):
        path = str(tmp_path / "serve.wal")
        engine = StandingQueryEngine(
            make_instance, journal=ServingJournal(path, fresh=True)
        )
        engine.register(SELECTION, name="q")
        # Crash before the first commit: only the register event is
        # durable.  Resume must replay the whole stream.
        engine.journal.close()
        resumed = resume_serving(make_instance, path, records, batch_size=BATCH)
        sq = resumed.lookup("sq1")
        assert served_state(sq) == solo_state(SELECTION, records)


class TestHttpPlane:
    def run_server(self, coro):
        return asyncio.run(coro)

    async def request(self, port, raw):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(raw.encode())
        await writer.drain()
        data = await reader.read()
        writer.close()
        head, _, body = data.partition(b"\r\n\r\n")
        status = int(head.split(b" ")[1])
        return status, body

    def test_control_plane_round_trip(self, records):
        async def scenario():
            engine = StandingQueryEngine(make_instance)
            server = QueryServer(engine, batch_size=BATCH)
            _, port = await server.start_http()

            body = json.dumps({"query": SELECTION, "tenant": "acme"})
            status, payload = await self.request(
                port,
                f"POST /queries HTTP/1.1\r\nContent-Length: {len(body)}"
                f"\r\n\r\n{body}",
            )
            assert status == 201
            registered = json.loads(payload)
            assert registered["shared"] is True
            qid = registered["id"]

            await server.ingest(records[:512], close=False)

            status, payload = await self.request(
                port, "GET /healthz HTTP/1.1\r\n\r\n"
            )
            assert status == 200
            assert json.loads(payload)["consumed"] == 512

            status, payload = await self.request(
                port, "GET /metrics HTTP/1.1\r\n\r\n"
            )
            assert status == 200
            text = payload.decode()
            assert 'tenant="acme"' in text
            assert "serving_records_total 512" in text

            status, payload = await self.request(
                port, f"GET /queries/{qid}/results?limit=5 HTTP/1.1\r\n\r\n"
            )
            assert status == 200
            rows = json.loads(payload)
            assert len(rows["rows"]) == 5

            status, payload = await self.request(
                port, f"DELETE /queries/{qid} HTTP/1.1\r\n\r\n"
            )
            assert status == 200
            assert json.loads(payload)["unregistered_at"] == 512

            status, _ = await self.request(port, "GET /nope HTTP/1.1\r\n\r\n")
            assert status == 404
            # Unknown standing-query ids are 404, not 400/500: the
            # route exists, the resource doesn't.
            status, payload = await self.request(
                port, "GET /queries/ghost/results HTTP/1.1\r\n\r\n"
            )
            assert status == 404
            assert json.loads(payload)["error"]["reason"] == "unknown_query"
            status, payload = await self.request(
                port, "DELETE /queries/ghost HTTP/1.1\r\n\r\n"
            )
            assert status == 404
            assert json.loads(payload)["error"]["reason"] == "unknown_query"

            await server.stop_http()
            return engine.lookup(qid)

        sq = self.run_server(scenario())
        assert served_state(sq) == solo_state(SELECTION, records[:512])

    def test_http_registration_lands_at_a_batch_boundary(self, records):
        """A query registered mid-ingest sees exactly the later records."""

        async def scenario():
            engine = StandingQueryEngine(make_instance)
            server = QueryServer(engine, batch_size=BATCH, pace=0.0)
            _, port = await server.start_http()
            first = asyncio.create_task(server.ingest(records[:512], close=False))
            await first
            body = json.dumps({"query": SELECTION})
            status, payload = await self.request(
                port,
                f"POST /queries HTTP/1.1\r\nContent-Length: {len(body)}"
                f"\r\n\r\n{body}",
            )
            assert status == 201
            assert json.loads(payload)["offset"] == 512
            await server.ingest(records[512:], close=True)
            await server.stop_http()
            return engine.lookup(json.loads(payload)["id"])

        sq = self.run_server(scenario())
        assert sq.registered_at == 512
        assert served_state(sq) == solo_state(SELECTION, records[512:])
