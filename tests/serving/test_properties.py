"""Property: registry churn never perturbs the surviving queries.

Hypothesis drives random register/unregister schedules at arbitrary
record offsets through :func:`repro.serving.server.drive`.  The oracle
for each query is a solo replay of the same text over exactly the
records it was subscribed for (``records[registered_at:unregistered_at]``
— registrations land at batch boundaries, and ``drive`` splits batches
at event offsets, so the subscribed slice is well-defined).  Whatever
arrives or leaves around it, every query must come out byte-identical
to that oracle.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving.server import StandingQueryEngine, drive

from tests.serving.conftest import (
    EXAMPLE_TEXTS,
    instance_state,
    make_instance,
    served_state,
)

#: churn pool: a sampler, an aggregation, a selection, and a stateful
#: selection — every serving path (shared feeder, shared prefilter,
#: private feed) appears in random mixtures.
POOL = [
    EXAMPLE_TEXTS["reservoir"],
    EXAMPLE_TEXTS["top_talkers"],
    EXAMPLE_TEXTS["big_flows"],
    EXAMPLE_TEXTS["unsound_unshardable"],
]

N_RECORDS = 1075  # the session `records` fixture's length (10s research feed)

registration = st.tuples(
    st.integers(min_value=0, max_value=N_RECORDS),  # register offset
    st.one_of(st.none(), st.integers(min_value=0, max_value=N_RECORDS + 200)),
    st.integers(min_value=0, max_value=len(POOL) - 1),  # pool index
)


def solo_slice(text, records, start, end):
    gs = make_instance()
    gs.add_query(text, name="q")
    gs.start()
    gs.feed(records[start:end])
    gs.finish()
    return instance_state(gs, "q")


@given(regs=st.lists(registration, min_size=1, max_size=6), share=st.booleans())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_random_churn_matches_solo_replay(records, regs, share):
    schedule = []
    for i, (start, stop, pool_index) in enumerate(regs):
        qid = f"h{i}"
        schedule.append({
            "kind": "register",
            "offset": start,
            "text": POOL[pool_index],
            "name": "q",
            "qid": qid,
        })
        if stop is not None and stop > start:
            schedule.append({"kind": "unregister", "offset": stop, "qid": qid})
    engine = StandingQueryEngine(make_instance, share=share)
    drive(engine, records, schedule=schedule, batch_size=128)
    assert engine.consumed == len(records)
    for i, (start, stop, pool_index) in enumerate(regs):
        sq = engine.lookup(f"h{i}")
        assert sq.registered_at == min(start, len(records))
        end = sq.unregistered_at if sq.unregistered_at is not None else len(records)
        oracle = solo_slice(POOL[pool_index], records, sq.registered_at, end)
        assert served_state(sq) == oracle, (
            f"query {sq.qid} ({start}..{stop}) diverged from its solo replay"
        )
