"""Serving equivalence: every served query is byte-identical to solo.

The contract (docs/SERVING.md): registering a query on the serving
engine changes *who does the work*, never *what the query produces* —
rows, metric counters, and cost accounts all come out exactly as a
private serial run of the same text over the same records.  Checked
for every pair of shipped examples (with and without sharing), for
sliding triples, and for a 100-variant standing set.
"""

import itertools

import pytest

from repro.serving.server import StandingQueryEngine, drive

from tests.serving.conftest import (
    BATCH,
    EXAMPLE_TEXTS,
    make_instance,
    served_state,
    solo_state_cached,
)

NAMES = sorted(EXAMPLE_TEXTS)
PAIRS = list(itertools.combinations(NAMES, 2))
TRIPLES = [tuple(NAMES[i : i + 3]) for i in range(len(NAMES) - 2)]


def serve_and_compare(names, records, share):
    engine = StandingQueryEngine(make_instance, share=share)
    served = [engine.register(EXAMPLE_TEXTS[name], name="q") for name in names]
    drive(engine, records, batch_size=BATCH)
    for name, sq in zip(names, served):
        oracle = solo_state_cached(EXAMPLE_TEXTS[name], "records", records)
        rows, metrics, cost = served_state(sq)
        orows, ometrics, ocost = oracle
        assert rows == orows, f"{name}: rows diverged under serving"
        assert metrics == ometrics, f"{name}: metric counters diverged"
        assert cost == ocost, f"{name}: cost accounts diverged"
    return engine


class TestPairs:
    @pytest.mark.parametrize("pair", PAIRS, ids=["+".join(p) for p in PAIRS])
    def test_shared(self, pair, records):
        serve_and_compare(pair, records, share=True)

    @pytest.mark.parametrize("pair", PAIRS, ids=["+".join(p) for p in PAIRS])
    def test_unshared(self, pair, records):
        serve_and_compare(pair, records, share=False)


class TestTriples:
    @pytest.mark.parametrize(
        "triple", TRIPLES, ids=["+".join(t) for t in TRIPLES]
    )
    def test_shared(self, triple, records):
        engine = serve_and_compare(triple, records, share=True)
        # At least one triple member pair actually shared a feed — the
        # examples include sampling/aggregation queries whose passthrough
        # feeders unify.
        report = engine.report()
        assert report["consumed"] == len(records)


class TestSharingHappens:
    def test_passthrough_feeders_unify(self, records):
        """Sampling + aggregation queries over one stream share one scan."""
        engine = StandingQueryEngine(make_instance)
        a = engine.register(EXAMPLE_TEXTS["reservoir"], name="q")
        b = engine.register(EXAMPLE_TEXTS["top_talkers"], name="q")
        assert a.signature is not None
        assert a.signature == b.signature
        drive(engine, records, batch_size=BATCH)
        replays = engine.metrics.value("serving_shared_replays_total")
        assert replays > 0

    def test_stateful_selection_gets_private_feed(self, records):
        """The SA401 counterexample still serves — on its own scan."""
        engine = StandingQueryEngine(make_instance)
        sq = engine.register(EXAMPLE_TEXTS["unsound_unshardable"], name="q")
        assert sq.signature is None
        assert "stateful selection" in sq.share_reason
        drive(engine, records, batch_size=BATCH)
        oracle = solo_state_cached(
            EXAMPLE_TEXTS["unsound_unshardable"], "records", records
        )
        assert served_state(sq) == oracle


class TestHundredVariants:
    def test_hundred_standing_queries_match_solo(self, records):
        """≥100 registered variants, each byte-identical to its solo run.

        20 distinct prefilter signatures × 5 replicas: the engine runs 20
        scans per batch and satisfies the other 80 subscriptions by
        replay; every one of the 100 must still equal its solo oracle.
        """
        variants = [
            f"SELECT time, srcIP, destIP, len FROM TCP WHERE len > {cut}"
            for cut in range(0, 2000, 100)
        ]
        engine = StandingQueryEngine(make_instance)
        served = []
        for replica in range(5):
            for text in variants:
                served.append((text, engine.register(text, name="q")))
        assert len(served) == 100
        drive(engine, records, batch_size=BATCH)
        assert len(engine.report()["shared_groups"]) == len(variants)
        for text, sq in served:
            oracle = solo_state_cached(text, "records", records)
            assert served_state(sq) == oracle, text
        # 80 of the 100 member-feeds per batch were replays.
        replays = engine.metrics.value("serving_shared_replays_total")
        batches = (len(records) + BATCH - 1) // BATCH
        assert replays == 80 * batches
