"""Per-query fault isolation: breakers, dead letters, leader failover.

The serving contract under faults: one poisoned standing query — a
scalar that starts raising at a data-determined point — is quarantined
behind its own circuit breaker (failures dead-lettered, skipped batches
accounted into the conservation identity) while **every other query
keeps serving byte-identically to its solo oracle**, even when the
poisoned query was the shared-group leader whose instance ran the
common prefix for everyone else.
"""

import json

import pytest

from repro.obs.export import render_prometheus
from repro.serving.faults import (
    BreakerConfig,
    CircuitBreaker,
    DeadLetter,
    DeadLetterLog,
)
from repro.serving.journal import ServingJournal
from repro.serving.server import StandingQueryEngine, drive, resume_serving

from tests.serving.conftest import BATCH, make_instance, served_state, solo_state

#: The poison trigger: ``POISON(time)`` raises once ``time`` crosses
#: this value.  The research feed's ``time`` is increasing, so failures
#: begin at a data-determined batch and never stop — deterministic
#: across runs, resumes, and processes.
POISON_AFTER = 4


def _poison(value):
    if value >= POISON_AFTER:
        raise RuntimeError("poisoned scalar blew up")
    return 1


def poison_factory():
    """A standard instance plus the poison scalar, under two names:
    ``POISON`` shares (deterministic), ``FLAKY`` refuses sharing
    (flagged nondeterministic) and lands on the direct path."""
    gs = make_instance()
    gs.register_scalar("POISON", _poison, deterministic=True)
    gs.register_scalar("FLAKY", _poison, deterministic=False)
    return gs


#: Poisoned aggregation: joins the TCP pass-through shared group (the
#: WHERE evaluates in its high-level node), so registering it first
#: makes it the group *leader*.
POISON_SHARED = (
    "SELECT tb, count(*) FROM TCP WHERE POISON(time) > 0"
    " GROUP BY time/10 as tb"
)
#: Poisoned selection on the direct path (nondeterministic scalar).
POISON_DIRECT = "SELECT time, len FROM TCP WHERE FLAKY(time) > 0"

HEALTHY_AGGS = [
    f"SELECT tb, count(*), sum(len) FROM TCP GROUP BY time/{k} as tb"
    for k in range(2, 9)
]
HEALTHY_SELECTIONS = [
    f"SELECT time, srcIP, len FROM TCP WHERE len > {threshold}"
    for threshold in range(100, 800, 100)
]


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        for _ in range(2):
            assert breaker.admits()
            breaker.record_failure("boom")
            assert breaker.state == "closed"
        breaker.record_failure("boom")
        assert breaker.state == "open"
        assert breaker.opens_total == 1
        assert breaker.quarantined

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure("boom")
        breaker.record_success()
        breaker.record_failure("boom")
        assert breaker.state == "closed"  # never two in a row

    def test_cooldown_skips_then_half_open_probe(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown_batches=3)
        )
        breaker.record_failure("boom")
        assert breaker.state == "open"
        assert not breaker.admits()  # skip 1
        assert not breaker.admits()  # skip 2
        assert breaker.admits()  # the probe
        assert breaker.state == "half_open"
        assert breaker.skipped_batches == 2

    def test_probe_success_closes_probe_failure_reopens(self):
        config = BreakerConfig(failure_threshold=1, cooldown_batches=1)
        healed = CircuitBreaker(config)
        healed.record_failure("boom")
        assert healed.admits()
        healed.record_success()
        assert healed.state == "closed"
        assert healed.last_error is None

        sick = CircuitBreaker(config)
        sick.record_failure("boom")
        assert sick.admits()
        sick.record_failure("still sick")
        assert sick.state == "open"
        assert sick.opens_total == 2

    def test_checkpoint_restore_round_trip(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure("a")
        breaker.record_failure("b")
        breaker.admits()
        snapshot = breaker.checkpoint()
        twin = CircuitBreaker(BreakerConfig(failure_threshold=2))
        twin.restore(snapshot)
        assert twin.checkpoint() == snapshot
        assert twin.state == breaker.state

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_batches=0)


class TestDeadLetterLog:
    def entry(self, qid, offset=0):
        return DeadLetter(
            qid=qid, tenant="t", role="direct", offset=offset,
            batch_size=128, error_type="RuntimeError", error="boom",
            breaker_state="closed",
        )

    def test_bounded_retention_counts_evictions(self):
        log = DeadLetterLog(capacity=2)
        for i in range(5):
            log.put(self.entry("sq1", offset=i))
        assert len(log) == 2
        assert log.total == 5
        assert log.evicted == 3
        assert [e.offset for e in log.entries] == [3, 4]
        assert log.counts_by_query() == {"sq1": 5}

    def test_jsonl_export(self, tmp_path):
        log = DeadLetterLog()
        log.put(self.entry("sq1"))
        log.put(self.entry("sq2"))
        path = str(tmp_path / "dead.jsonl")
        assert log.write_jsonl(path) == 2
        with open(path, "r", encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        assert [line["qid"] for line in lines] == ["sq1", "sq2"]
        assert lines[0]["error_type"] == "RuntimeError"

    def test_checkpoint_restore_round_trip(self):
        log = DeadLetterLog(capacity=8)
        for i in range(3):
            log.put(self.entry("sq1", offset=i))
        twin = DeadLetterLog(capacity=8)
        twin.restore(log.checkpoint())
        assert twin.checkpoint() == log.checkpoint()
        assert [e.offset for e in twin.entries] == [0, 1, 2]


def feed_all(engine, records):
    for start in range(0, len(records), BATCH):
        engine.feed(records[start : start + BATCH])


class TestPoisonQuarantine:
    def test_sixteen_queries_two_poisoned_rest_byte_identical(self, records):
        """The acceptance scenario: 16 standing queries, 2 poisoned —
        one of them the leader of the shared aggregation group — and
        the other 14 still byte-identical to their solo oracles."""
        engine = StandingQueryEngine(
            poison_factory,
            breaker=BreakerConfig(failure_threshold=3, cooldown_batches=4),
        )
        poisoned_leader = engine.register(POISON_SHARED, name="q")
        healthy = [
            (text, engine.register(text, name="q"))
            for text in HEALTHY_AGGS + HEALTHY_SELECTIONS
        ]
        poisoned_direct = engine.register(POISON_DIRECT, name="q")
        assert len(engine.queries()) == 16

        # The poisoned aggregation leads the shared pass-through group
        # (registered first); the FLAKY query was refused sharing.
        assert poisoned_leader.signature is not None
        group = engine._groups[poisoned_leader.signature]
        assert group[0] == poisoned_leader.qid
        assert len(group) == 8  # the 7 healthy aggregations follow it
        assert poisoned_direct.signature is None

        feed_all(engine, records)
        engine.close()

        # Both poisoned queries are quarantined, with the failure
        # recorded: breaker open, dead letters attributed.
        for sq, role in [(poisoned_leader, "leader"), (poisoned_direct, "direct")]:
            assert sq.breaker.state == "open"
            assert "poisoned scalar blew up" in sq.breaker.last_error
            assert engine.dead_letters.counts_by_query()[sq.qid] > 0
        roles = {e.qid: e.role for e in engine.dead_letters.entries}
        assert roles[poisoned_leader.qid] == "leader"
        assert roles[poisoned_direct.qid] == "direct"

        # The group survived its leader: failovers were recorded and
        # every healthy query — follower or private — equals solo.
        assert engine.metrics.value("serving_leader_failovers_total") > 0
        for text, sq in healthy:
            assert served_state(sq) == solo_state(text, records), (
                f"{sq.qid} diverged behind a quarantined leader"
            )

        # Quarantine is visible in the exposition: the breaker gauge
        # reads open (2) and the skip/batch counters are labelled.
        text = render_prometheus(engine.export_metrics())
        assert (
            f'serving_breaker_state{{serve_id="{poisoned_leader.qid}"}} 2'
            in text
        )
        assert "serving_poison_batches_total" in text
        assert "serve_poison_skipped_total" in text

    def test_poison_skips_close_the_conservation_identity(self, records):
        """Skipped batches are accounted, not silent: the poisoned
        instance's admission identity still balances to zero."""
        engine = StandingQueryEngine(
            poison_factory,
            breaker=BreakerConfig(failure_threshold=2, cooldown_batches=3),
        )
        sq = engine.register(POISON_SHARED, name="q")
        feed_all(engine, records)
        engine.close()
        metrics = sq.instance.metrics
        offered = metrics.value("stream_records_total", stream="TCP")
        parts = {
            name: metrics.value(name, stream="TCP")
            for name in [
                "stream_ingested_total",
                "stream_shed_total",
                "stream_quarantined_total",
                "stream_quota_shed_total",
                "serve_poison_skipped_total",
            ]
        }
        assert offered == len(records)
        assert parts["serve_poison_skipped_total"] > 0
        assert offered == sum(parts.values()), parts
        # And the skip shows up in the run report + cost accounts.
        report = sq.instance.run_report()
        assert report["streams"]["TCP"]["poison_skipped"] == (
            parts["serve_poison_skipped_total"]
        )
        assert sq.instance.cost.cycles("TCP") > 0

    def test_breaker_closes_again_when_the_fault_heals(self, records):
        """A transient fault (raises only inside a time window) opens
        the breaker, then a successful half-open probe re-closes it and
        the query serves again."""

        def transient(value):
            if 2 <= value < 4:
                raise RuntimeError("transient fault window")
            return 1

        def factory():
            gs = make_instance()
            gs.register_scalar("POISON", transient, deterministic=True)
            return gs

        engine = StandingQueryEngine(
            factory,
            breaker=BreakerConfig(failure_threshold=1, cooldown_batches=1),
        )
        sq = engine.register(POISON_SHARED, name="q")
        witness = engine.register(HEALTHY_AGGS[0], name="q")
        feed_all(engine, records)
        engine.close()
        assert sq.breaker.opens_total > 0
        assert sq.breaker.state == "closed"
        assert sq.breaker.last_error is None
        assert len(sq.results) > 0  # served again after healing
        assert served_state(witness) == solo_state(HEALTHY_AGGS[0], records)

    def test_unregistering_the_leader_promotes_the_next_member(self, records):
        """Removing a shared-group leader mid-stream hands leadership to
        the next member with no gap for the rest of the group."""
        engine = StandingQueryEngine(make_instance)
        leader = engine.register(HEALTHY_AGGS[0], name="q")
        follower = engine.register(HEALTHY_AGGS[1], name="q")
        half = (len(records) // (2 * BATCH)) * BATCH
        feed_all(engine, records[:half])
        engine.unregister(leader.qid)
        feed_all(engine, records[half:])
        engine.close()
        assert served_state(follower) == solo_state(HEALTHY_AGGS[1], records)
        assert served_state(leader) == solo_state(
            HEALTHY_AGGS[0], records[:half]
        )

    def test_every_group_member_failing_dead_letters_each(self, records):
        """When the whole group is poisoned there is no leader to fail
        over to: every member is dead-lettered, nothing propagates."""
        engine = StandingQueryEngine(
            poison_factory,
            breaker=BreakerConfig(failure_threshold=2, cooldown_batches=4),
        )
        a = engine.register(POISON_SHARED, name="q")
        b = engine.register(POISON_SHARED, name="q")
        feed_all(engine, records)
        engine.close()
        counts = engine.dead_letters.counts_by_query()
        assert counts[a.qid] > 0 and counts[b.qid] > 0
        assert a.breaker.state == "open"
        assert b.breaker.state == "open"

    def test_report_and_describe_surface_quarantine(self, records):
        engine = StandingQueryEngine(
            poison_factory, breaker=BreakerConfig(failure_threshold=1)
        )
        sq = engine.register(POISON_SHARED, name="q")
        feed_all(engine, records)
        engine.close()
        report = engine.report()
        (described,) = report["queries"]
        assert described["quarantined"] is True
        assert described["breaker"]["state"] == "open"
        assert report["dead_letters"]["total"] > 0
        assert report["dead_letters"]["by_query"] == {sq.qid: (
            report["dead_letters"]["total"]
        )}


class TestBreakerDurability:
    def run_drive(self, journal_path, records, fresh=True):
        engine = StandingQueryEngine(
            poison_factory,
            journal=ServingJournal(journal_path, fresh=fresh) if journal_path
            else None,
            breaker=BreakerConfig(failure_threshold=2, cooldown_batches=3),
        )
        engine.register(POISON_SHARED, name="q", qid="bad")
        engine.register(HEALTHY_AGGS[0], name="q", qid="good")
        drive(engine, records, batch_size=BATCH, commit_interval=2)
        return engine

    def test_breaker_and_dead_letter_state_ride_the_journal(
        self, tmp_path, records
    ):
        """A resumed serve restores breaker + dead-letter state from the
        last commit and replays to the same terminal quarantine state."""
        path = str(tmp_path / "serve.wal")
        oracle = self.run_drive(None, records)
        self.run_drive(path, records)
        resumed = resume_serving(
            poison_factory,
            path,
            (_ for _ in ()),  # final commit present: reads no input
            batch_size=BATCH,
            commit_interval=2,
            breaker=BreakerConfig(failure_threshold=2, cooldown_batches=3),
        )
        assert resumed.closed
        for qid in ("bad", "good"):
            assert resumed.lookup(qid).breaker.checkpoint() == (
                oracle.lookup(qid).breaker.checkpoint()
            )
        assert resumed.dead_letters.checkpoint() == (
            oracle.dead_letters.checkpoint()
        )

    def test_old_journals_without_breaker_state_still_resume(
        self, tmp_path, records
    ):
        """Commits written before fault isolation (no ``breakers`` /
        ``dead_letters`` keys) restore with everything closed."""
        path = str(tmp_path / "serve.wal")
        engine = StandingQueryEngine(
            make_instance, journal=ServingJournal(path, fresh=True)
        )
        engine.register(HEALTHY_AGGS[0], name="q", qid="good")
        half = (len(records) // (2 * BATCH)) * BATCH
        feed_all(engine, records[:half])

        # Rewrite the journal's entries with the legacy commit shape.
        engine.commit()
        engine.journal.close()
        entries = ServingJournal.read(path)
        legacy = ServingJournal(path, fresh=True)
        for entry in entries:
            entry = dict(entry)
            kind = entry.pop("kind")
            entry.pop("serving_version", None)
            entry.pop("breakers", None)
            entry.pop("dead_letters", None)
            legacy.append(kind, **entry)
        legacy.close()

        resumed = resume_serving(
            make_instance, path, records, batch_size=BATCH
        )
        assert resumed.lookup("good").breaker.state == "closed"
        assert resumed.dead_letters.total == 0
        assert served_state(resumed.lookup("good")) == solo_state(
            HEALTHY_AGGS[0], records
        )
