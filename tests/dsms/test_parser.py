"""Recursive-descent parser: clause structure and expressions."""

import pytest

from repro.errors import ParseError
from repro.dsms.expr import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.dsms.parser.parser import parse_expression, parse_query
from repro.algorithms.bindings import (
    HEAVY_HITTERS_QUERY,
    MIN_HASH_QUERY,
    RESERVOIR_QUERY,
    SUBSET_SUM_QUERY,
)


class TestClauses:
    def test_minimal_query(self):
        ast = parse_query("SELECT a FROM S")
        assert ast.from_stream == "S"
        assert len(ast.select) == 1
        assert ast.where is None and not ast.group_by

    def test_select_aliases(self):
        ast = parse_query("SELECT a AS x, b FROM S")
        assert ast.select[0].alias == "x"
        assert ast.select[1].alias is None

    def test_where(self):
        ast = parse_query("SELECT a FROM S WHERE a > 5")
        assert isinstance(ast.where, BinaryOp)

    def test_group_by_with_expression_alias(self):
        ast = parse_query("SELECT tb FROM S GROUP BY time/60 as tb, srcIP")
        assert [item.name for item in ast.group_by] == ["tb", "srcIP"]

    def test_group_by_expression_requires_alias(self):
        with pytest.raises(ParseError, match="needs an alias"):
            parse_query("SELECT a FROM S GROUP BY time/60")

    def test_group_by_underscore_spelling(self):
        ast = parse_query("SELECT srcIP FROM S GROUP_BY srcIP")
        assert ast.group_by[0].name == "srcIP"

    def test_supergroup_with_and_without_by(self):
        a = parse_query("SELECT a FROM S GROUP BY a, b SUPERGROUP a")
        b = parse_query("SELECT a FROM S GROUP BY a, b SUPERGROUP BY a")
        assert a.supergroup == b.supergroup == ("a",)

    def test_having(self):
        ast = parse_query("SELECT a FROM S GROUP BY a HAVING count(*) > 3")
        assert ast.having is not None

    def test_cleaning_clauses_either_order(self):
        q1 = parse_query(
            "SELECT a FROM S GROUP BY a CLEANING WHEN f() = TRUE CLEANING BY g() = TRUE"
        )
        q2 = parse_query(
            "SELECT a FROM S GROUP BY a CLEANING BY g() = TRUE CLEANING WHEN f() = TRUE"
        )
        assert str(q1.cleaning_when) == str(q2.cleaning_when)
        assert q1.has_cleaning and q2.has_cleaning

    def test_duplicate_cleaning_when_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_query(
                "SELECT a FROM S GROUP BY a"
                " CLEANING WHEN f() = TRUE CLEANING WHEN f() = TRUE"
            )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_query("SELECT a FROM S extra")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a WHERE a > 1")

    def test_str_round_trip(self):
        text = "SELECT a FROM S WHERE a > 5 GROUP BY a HAVING count(*) > 1"
        ast = parse_query(text)
        assert parse_query(str(ast)) == ast


class TestPaperQueries:
    """Every §6.6 / §6.1 example query must parse."""

    def test_subset_sum_query(self):
        ast = parse_query(SUBSET_SUM_QUERY.format(window=20, target=1000))
        assert [item.name for item in ast.group_by] == ["tb", "srcIP", "destIP", "uts"]
        assert ast.cleaning_when is not None and ast.cleaning_by is not None
        assert ast.having is not None

    def test_heavy_hitters_query(self):
        ast = parse_query(HEAVY_HITTERS_QUERY.format(window=60, bucket=100))
        assert ast.cleaning_when is not None

    def test_min_hash_query(self):
        ast = parse_query(MIN_HASH_QUERY.format(window=60, k=100))
        assert ast.supergroup == ("tb", "srcIP")

    def test_reservoir_query(self):
        ast = parse_query(RESERVOIR_QUERY.format(window=60, target=100))
        assert ast.where is not None


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"

    def test_precedence_comparison_over_and(self):
        expr = parse_expression("a > 1 AND b < 2")
        assert expr.op == "AND"

    def test_precedence_and_over_or(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "OR"

    def test_not(self):
        expr = parse_expression("NOT a = b")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert isinstance(expr, UnaryOp)

    def test_function_call_empty_args(self):
        expr = parse_expression("ssthreshold()")
        assert isinstance(expr, FunctionCall) and expr.args == ()

    def test_star_argument(self):
        expr = parse_expression("count(*)")
        assert isinstance(expr.args[0], Star)

    def test_nested_calls(self):
        expr = parse_expression("UMAX(sum(len), ssthreshold())")
        assert isinstance(expr, FunctionCall)
        assert isinstance(expr.args[0], FunctionCall)

    def test_superaggregate_call(self):
        expr = parse_expression("Kth_smallest_value$(HX, 100)")
        assert expr.name == "Kth_smallest_value$"

    def test_bare_superaggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("count_distinct$")

    def test_true_false_literals(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 3")

    def test_time_division_groups(self):
        expr = parse_expression("time/60")
        assert isinstance(expr, BinaryOp) and expr.op == "/"
        assert expr.left == ColumnRef("time")
