"""The cycle-cost model."""

import pytest

from repro.errors import CostModelError
from repro.dsms.cost import NULL_COST_MODEL, CostBook, CostModel


class TestCharging:
    def test_charge_accumulates(self):
        model = CostModel()
        model.charge("q", "tuple_read")
        model.charge("q", "tuple_read", 2)
        assert model.cycles("q") == 3 * model.book.tuple_read

    def test_accounts_are_independent(self):
        model = CostModel()
        model.charge("a", "tuple_read")
        model.charge("b", "tuple_copy")
        assert model.cycles("a") == model.book.tuple_read
        assert model.cycles("b") == model.book.tuple_copy

    def test_unknown_operation_raises(self):
        model = CostModel()
        with pytest.raises(CostModelError, match="unknown cost operation"):
            model.charge("q", "warp_drive")

    def test_negative_count_raises(self):
        model = CostModel()
        with pytest.raises(CostModelError):
            model.charge("q", "tuple_read", -1)

    def test_uncharged_account_is_zero(self):
        assert CostModel().cycles("nothing") == 0

    def test_total_cycles(self):
        model = CostModel()
        model.charge("a", "tuple_read")
        model.charge("b", "tuple_read")
        assert model.total_cycles() == 2 * model.book.tuple_read

    def test_reset(self):
        model = CostModel()
        model.charge("a", "tuple_read")
        model.reset()
        assert model.total_cycles() == 0


class TestCpuPercent:
    def test_calibration_anchor_low_level_selection(self):
        # Paper §7.2: a low-level selection forwarding every packet at
        # 100 kpps costs ~60% of one 2.8 GHz CPU.
        model = CostModel()
        packets = 100_000
        model.charge("low", "tuple_read", packets)
        model.charge("low", "tuple_copy", packets)
        cpu = model.cpu_percent("low", stream_seconds=1.0)
        assert 55.0 < cpu < 65.0

    def test_zero_seconds_rejected(self):
        with pytest.raises(CostModelError):
            CostModel().cpu_percent("q", 0)

    def test_scales_inversely_with_time(self):
        model = CostModel()
        model.charge("q", "tuple_copy", 1000)
        assert model.cpu_percent("q", 1.0) == pytest.approx(
            2 * model.cpu_percent("q", 2.0)
        )

    def test_invalid_clock(self):
        with pytest.raises(CostModelError):
            CostModel(clock_hz=0)


class TestNullModel:
    def test_null_model_ignores_charges(self):
        NULL_COST_MODEL.charge("q", "tuple_copy", 10**6)
        assert NULL_COST_MODEL.cycles("q") == 0

    def test_custom_book(self):
        book = CostBook(tuple_read=1)
        model = CostModel(book)
        model.charge("q", "tuple_read", 5)
        assert model.cycles("q") == 5
