"""Pass 1 of the static analyzer: type inference (``repro.analysis.types``).

Checks the ``GType`` lattice, the inferred type of every expression shape,
function signature extraction, and the clause/group-variable type maps the
later passes consume.
"""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.linter import default_lint_registries
from repro.analysis.signatures import (
    Arity,
    GType,
    aggregate_signature,
    numeric_join,
    scalar_signature,
    stateful_signature,
    superaggregate_signature,
)
from repro.analysis.types import check_types
from repro.dsms.parser.analyzer import Registries, analyze
from repro.dsms.parser.parser import parse_query


@pytest.fixture(scope="module")
def registries() -> Registries:
    return default_lint_registries()


def infer(registries: Registries, query: str):
    """Type-check a query, asserting it produced no diagnostics."""
    collector = DiagnosticCollector()
    analyzed = analyze(parse_query(query), registries, collector)
    assert analyzed is not None
    result = check_types(analyzed, registries, collector)
    assert not collector.has_errors, list(collector)
    return result


class TestLattice:
    def test_numeric_join_widens(self):
        assert numeric_join(GType.UINT, GType.INT) is GType.INT
        assert numeric_join(GType.INT, GType.FLOAT) is GType.FLOAT
        assert numeric_join(GType.UINT, GType.UINT) is GType.UINT

    def test_unknown_is_contagious(self):
        assert numeric_join(GType.UNKNOWN, GType.INT) is GType.UNKNOWN

    def test_arity_accepts(self):
        assert Arity(1, 2).accepts(1)
        assert Arity(1, 2).accepts(2)
        assert not Arity(1, 2).accepts(3)
        assert Arity(0, None).accepts(17)

    def test_arity_str(self):
        assert str(Arity(2, 2)) == "2"
        assert str(Arity(1, 2)) == "1..2"
        assert str(Arity(0, None)) == "0+"


class TestSelectTypes:
    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("42", GType.INT),
            ("1.5", GType.FLOAT),
            ("'x'", GType.STR),
            ("TRUE", GType.BOOL),
            ("len", GType.UINT),  # every TCP attribute is uint
            ("-len", GType.INT),  # negation can go negative
            ("len + 1", GType.INT),
            ("len / 2", GType.INT),
            ("len / 2.0", GType.FLOAT),
            ("len > 10", GType.BOOL),
            ("NOT (len > 10)", GType.BOOL),
            ("H(srcIP)", GType.UINT),
            ("HU(srcIP)", GType.FLOAT),
            ("UMAX(srcPort, destPort)", GType.UINT),
            ("sqrt(len)", GType.FLOAT),
            ("floor(len / 7.0)", GType.INT),
            ("ip_str(srcIP)", GType.STR),
        ],
    )
    def test_select_item(self, registries, expr, expected):
        result = infer(registries, f"SELECT {expr} FROM TCP")
        assert result.clause_types["SELECT[0]"] is expected

    @pytest.mark.parametrize(
        "agg, expected",
        [
            ("sum(len)", GType.UINT),  # sum of uint stays uint
            ("count(*)", GType.INT),
            ("count_distinct(srcIP)", GType.INT),
            ("avg(len)", GType.FLOAT),
            ("min(len)", GType.UINT),
            ("max(len)", GType.UINT),
            ("first(len)", GType.UINT),
            ("last(len)", GType.UINT),
        ],
    )
    def test_aggregate_type(self, registries, agg, expected):
        result = infer(
            registries,
            f"SELECT tb, {agg} FROM TCP GROUP BY time/20 as tb",
        )
        assert result.clause_types["SELECT[1]"] is expected


class TestGroupVarTypes:
    def test_group_var_from_defining_expr(self, registries):
        result = infer(
            registries,
            "SELECT tb, hb, count(*) FROM TCP"
            " GROUP BY time/20 as tb, HU(srcIP) as hb",
        )
        assert result.group_var_types["tb"] is GType.INT  # uint / int literal
        assert result.group_var_types["hb"] is GType.FLOAT

    def test_bare_column_group_var(self, registries):
        result = infer(
            registries,
            "SELECT tb, srcIP, count(*) FROM TCP"
            " GROUP BY time/20 as tb, srcIP",
        )
        assert result.group_var_types["srcIP"] is GType.UINT

    def test_select_sees_group_env(self, registries):
        result = infer(
            registries,
            "SELECT hb / 2.0, count(*) FROM TCP"
            " GROUP BY time/20 as tb, H(srcIP) as hb",
        )
        assert result.clause_types["SELECT[0]"] is GType.FLOAT


class TestClauseTypes:
    def test_where_is_bool(self, registries):
        result = infer(registries, "SELECT len FROM TCP WHERE len > 10")
        assert result.clause_types["WHERE"] is GType.BOOL

    def test_sfun_predicate_is_bool(self, registries):
        # SFUN return annotations are strings under PEP 563; the
        # signature extractor must still resolve ``-> bool``.
        result = infer(
            registries,
            "SELECT tb, srcIP, sum(len) FROM TCP"
            " WHERE ssample(len, 1000) = TRUE"
            " GROUP BY time/20 as tb, srcIP, uts"
            " CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE"
            " CLEANING BY ssclean_with(sum(len)) = TRUE",
        )
        assert result.clause_types["WHERE"] is GType.BOOL
        assert result.clause_types["CLEANING WHEN"] is GType.BOOL
        assert result.clause_types["CLEANING BY"] is GType.BOOL


class TestSignatures:
    def test_scalar_builtin(self, registries):
        sig = scalar_signature(registries.scalars, "H")
        assert sig.arity.accepts(1) and sig.arity.accepts(2)
        assert not sig.arity.accepts(3)

    def test_scalar_registered_python_fn(self, registries):
        registries.scalars.register("thrice", lambda x: 3 * x)
        sig = scalar_signature(registries.scalars, "thrice")
        assert sig.arity == Arity(1, 1)

    def test_scalar_annotation_resolved(self, registries):
        def as_float(x) -> float:
            return float(x)

        registries.scalars.register("as_float", as_float)
        sig = scalar_signature(registries.scalars, "as_float")
        assert sig.returns([GType.UINT]) is GType.FLOAT

    def test_unknown_aggregate_is_permissive(self):
        sig = aggregate_signature("mystery")
        assert sig.arity == Arity(1, 1)
        assert sig.returns([GType.INT]) is GType.UNKNOWN

    def test_superaggregate_sum_joins(self):
        sig = superaggregate_signature("sum")
        assert sig.returns([GType.FLOAT]) is GType.FLOAT
        assert sig.returns([GType.UINT]) is GType.UINT

    def test_stateful_skips_state_param(self, registries):
        # ssample(state, measure, target) -> user-visible arity 2
        sig = stateful_signature(registries.stateful, "ssample")
        assert sig.arity == Arity(2, 2)
        assert sig.returns([]) is GType.BOOL

    def test_stateful_zero_arg(self, registries):
        sig = stateful_signature(registries.stateful, "ssthreshold")
        assert sig.arity == Arity(0, 0)
        assert sig.returns([]) is GType.FLOAT
