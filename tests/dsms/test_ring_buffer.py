"""Ring buffer: subscription, polling, drop accounting."""

import pytest

from repro.errors import StreamError
from repro.dsms.ring_buffer import RingBuffer


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(StreamError):
            RingBuffer(0)

    def test_poll_returns_pushed_order(self):
        ring = RingBuffer(16)
        sid = ring.subscribe()
        for i in range(5):
            ring.push(i)
        assert ring.poll(sid) == [0, 1, 2, 3, 4]

    def test_poll_consumes(self):
        ring = RingBuffer(16)
        sid = ring.subscribe()
        ring.push(1)
        assert ring.poll(sid) == [1]
        assert ring.poll(sid) == []

    def test_subscriber_sees_only_records_after_subscription(self):
        ring = RingBuffer(16)
        ring.push("early")
        sid = ring.subscribe()
        ring.push("late")
        assert ring.poll(sid) == ["late"]

    def test_max_records_limits_poll(self):
        ring = RingBuffer(16)
        sid = ring.subscribe()
        ring.extend(iter(range(10)))
        assert ring.poll(sid, max_records=3) == [0, 1, 2]
        assert ring.poll(sid) == list(range(3, 10))

    def test_len_counts_total_pushes(self):
        ring = RingBuffer(4)
        ring.extend(iter(range(10)))
        assert len(ring) == 10


class TestMultipleSubscribers:
    def test_independent_cursors(self):
        ring = RingBuffer(16)
        a, b = ring.subscribe(), ring.subscribe()
        ring.push(1)
        assert ring.poll(a) == [1]
        ring.push(2)
        assert ring.poll(a) == [2]
        assert ring.poll(b) == [1, 2]


class TestOverflow:
    def test_slow_consumer_drops_oldest(self):
        ring = RingBuffer(4)
        sid = ring.subscribe()
        ring.extend(iter(range(10)))
        out = ring.poll(sid)
        assert out == [6, 7, 8, 9]
        assert ring.drops(sid) == 6

    def test_backlog(self):
        ring = RingBuffer(16)
        sid = ring.subscribe()
        ring.extend(iter(range(5)))
        assert ring.backlog(sid) == 5
        ring.poll(sid)
        assert ring.backlog(sid) == 0

    def test_drops_counted_before_poll(self):
        # Overwritten records must show up in drops()/backlog() as soon as
        # they become unreachable, not only after the next poll — overload
        # monitors read these counters without consuming the stream.
        ring = RingBuffer(4)
        sid = ring.subscribe()
        ring.extend(iter(range(10)))
        assert ring.drops(sid) == 6
        assert ring.backlog(sid) == 4
        ring.poll(sid)
        assert ring.drops(sid) == 6
        assert ring.backlog(sid) == 0

    def test_pending_drops_are_not_double_counted(self):
        ring = RingBuffer(4)
        sid = ring.subscribe()
        ring.extend(iter(range(10)))
        assert ring.drops(sid) == 6
        ring.extend(iter(range(10, 14)))
        assert ring.drops(sid) == 10
        assert ring.poll(sid) == [10, 11, 12, 13]
        assert ring.drops(sid) == 10

    def test_no_drops_when_keeping_up(self):
        ring = RingBuffer(4)
        sid = ring.subscribe()
        for i in range(20):
            ring.push(i)
            assert ring.poll(sid) == [i]
        assert ring.drops(sid) == 0


class TestErrors:
    def test_unknown_subscriber(self):
        ring = RingBuffer(4)
        with pytest.raises(StreamError):
            ring.poll(99)
        with pytest.raises(StreamError):
            ring.drops(99)
        with pytest.raises(StreamError):
            ring.backlog(99)


class TestPropertyBased:
    def test_random_push_poll_sequences_preserve_order(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.lists(st.tuples(st.booleans(), st.integers(0, 100)),
                        max_size=200),
               st.integers(2, 32))
        @settings(max_examples=50, deadline=None)
        def check(ops, capacity):
            ring = RingBuffer(capacity)
            sid = ring.subscribe()
            pushed = []
            polled = []
            for is_push, value in ops:
                if is_push:
                    ring.push(value)
                    pushed.append(value)
                else:
                    polled.extend(ring.poll(sid))
            polled.extend(ring.poll(sid))
            dropped = ring.drops(sid)
            # Everything polled is a subsequence of what was pushed, with
            # exactly `dropped` records missing.
            assert len(polled) + dropped == len(pushed)
            # Order-preservation: polled appears in pushed order.
            it = iter(pushed)
            assert all(any(v == p for p in it) for v in polled)

        check()
