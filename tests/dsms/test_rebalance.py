"""Elastic skew-aware sharding: routing, migration, curation, refusals.

The load-bearing property mirrors test_sharded.py's: a rebalanced run —
hot keys pinned, slots migrated, shards scaled mid-stream — must yield
exactly the serial runtime's window output.  On top of that sit the
rebalancer's own contracts: the default routing table is byte-identical
to the legacy modulo, every decision is a pure function of record
counts (so checkpoint/restore replays identically), and hot-key
curation drops records only with full shed-style accounting.
"""

import pytest

from repro.errors import ExecutionError, PlanningError
from repro.dsms.cost import CostModel
from repro.dsms.rebalance import (
    RebalancePolicy,
    Rebalancer,
    RoutingTable,
    _Curation,
)
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope, canonical_rows, stable_hash
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.testing.faults import hot_key_stream
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

SS_TEXT = SUBSET_SUM_QUERY.format(window=5, target=500).replace(
    "GROUP BY time/5 as tb, srcIP, destIP, uts",
    "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
)
AGG_TEXT = "SELECT tb, srcIP, sum(len), count(*) FROM TCP GROUP BY time/5 as tb, srcIP"

HOT_IP = 0x0A0A0A0A


def skewed_trace(seconds=15, seed=3, fraction=0.8):
    config = TraceConfig(duration_seconds=seconds, rate_scale=0.02, seed=seed)
    records = list(research_center_feed(config))
    return hot_key_stream(records, "srcIP", HOT_IP, fraction=fraction)


def policy(**overrides):
    defaults = dict(check_interval=2, min_records=64, max_shards=4)
    defaults.update(overrides)
    return RebalancePolicy(**defaults)


def serial_rows(text, feed, library=None):
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    if library is not None:
        gs.use_stateful_library(library)
    handle = gs.add_query(text, name="q")
    gs.run(iter(feed))
    return canonical_rows(handle.results)


def build(rebalance, shards=2, library=None, **kwargs):
    sh = ShardedGigascope(shards=shards, rebalance=rebalance, **kwargs)
    sh.register_stream(TCP_SCHEMA)
    if library is not None:
        sh.use_stateful_library(library)
    sh.add_query(AGG_TEXT if library is None else SS_TEXT, name="q")
    return sh


class TestRoutingTable:
    def test_default_is_byte_identical_to_legacy_modulo(self):
        for shards in (1, 2, 3, 4, 7):
            table = RoutingTable.default(shards)
            for value in list(range(200)) + ["10.0.0.1", "a", (1, 2)]:
                h = stable_hash(value)
                assert table.route(h) == h % shards

    def test_hot_pin_overrides_slots(self):
        table = RoutingTable.default(2)
        h = stable_hash(HOT_IP)
        assert table.route(h) == h % 2
        table.hot[h] = 1 - (h % 2)
        assert table.route(h) == 1 - (h % 2)
        # Other keys still follow the slot map.
        other = stable_hash("cold")
        assert table.route(other) == other % 2

    def test_snapshot_round_trip(self):
        table = RoutingTable.default(3)
        table.hot[stable_hash(HOT_IP)] = 2
        table.slots[5] = 1
        table.version = 7
        clone = RoutingTable.from_snapshot(table.snapshot())
        assert clone.version == 7
        assert clone.shard_count == 3
        for h in range(500):
            assert clone.route(h) == table.route(h)

    def test_needs_at_least_one_slot(self):
        with pytest.raises(ExecutionError, match="at least one slot"):
            RoutingTable(slots=[])


class TestCurationDeterminism:
    def test_evenly_spaced_admission(self):
        cur = _Curation("key", keep=0.125)
        admitted = sum(cur.admit() for _ in range(1000))
        assert admitted == int(1000 * 0.125)
        # Evenly spaced, not front-loaded: any prefix admits its share.
        cur = _Curation("key", keep=0.25)
        for n in range(1, 200):
            cur.admit()
            assert cur.admitted == int(n * 0.25)

    def test_snapshot_resumes_identically(self):
        reference = _Curation("key", keep=0.3)
        decisions = [reference.admit() for _ in range(100)]
        resumed = _Curation("key", keep=0.3)
        for _ in range(40):
            resumed.admit()
        resumed = _Curation.from_snapshot(resumed.snapshot())
        assert [resumed.admit() for _ in range(60)] == decisions[40:]


class TestRebalancerCheckpoint:
    def _feed(self, rebalancer, values):
        for value in values:
            rebalancer.route_record(stable_hash(value), value, "TCP")

    def test_restore_replays_identical_decisions(self):
        values = [HOT_IP if i % 5 else i for i in range(400)]
        reference = Rebalancer(policy(), RoutingTable.default(2))
        self._feed(reference, values)
        plan = reference.maybe_plan()
        if plan is not None:
            reference.commit(plan)

        # Checkpoint mid-history, restore into a fresh instance: the
        # table and every subsequent routing decision must match.
        clone = Rebalancer(policy(), RoutingTable.default(2))
        clone.restore(reference.checkpoint())
        assert clone.table.version == reference.table.version
        for value in values:
            h = stable_hash(value)
            assert clone.table.route(h) == reference.table.route(h)
        assert clone.report.as_dict() == reference.report.as_dict()


class TestInlineEquivalence:
    def test_aggregation_on_skewed_stream(self):
        feed = skewed_trace()
        sh = build(policy())
        sh.run(iter(feed), batch_size=128)
        assert canonical_rows(sh.query("q").results) == serial_rows(
            AGG_TEXT, feed
        )
        report = sh.run_report()["rebalance"]
        assert report["plans"] >= 1, "skew never triggered a rebalance"
        assert report["pinned_keys"] >= 1

    def test_subset_sum_supergroup_on_skewed_stream(self):
        feed = skewed_trace()
        library = subset_sum_library(relax_factor=10.0)
        sh = build(policy(), library=library)
        sh.run(iter(feed), batch_size=128)
        assert canonical_rows(sh.query("q").results) == serial_rows(
            SS_TEXT, feed, library=subset_sum_library(relax_factor=10.0)
        )
        assert sh.run_report()["rebalance"]["plans"] >= 1

    def test_scales_shard_pool_up(self):
        feed = skewed_trace()
        # A decision window spans check_interval * batch_size ~ 256
        # records; capacity 100 makes the planner want ceil(256/100) = 3
        # shards, above the starting pool of 2.
        sh = build(policy(shard_capacity=100), shards=2)
        sh.run(iter(feed), batch_size=128)
        report = sh.run_report()["rebalance"]
        assert report["scale_ups"] >= 1
        assert report["routing"]["shard_count"] > 2
        assert canonical_rows(sh.query("q").results) == serial_rows(
            AGG_TEXT, feed
        )


class TestSupervisedEquivalence:
    def test_supervised_rebalance_matches_serial(self):
        feed = skewed_trace(seconds=10)
        sh = build(policy(), supervise=True)
        sh.run(iter(feed), batch_size=128)
        assert canonical_rows(sh.query("q").results) == serial_rows(
            AGG_TEXT, feed
        )
        assert sh.run_report()["rebalance"]["plans"] >= 1


class TestCurationAccounting:
    def run_curated(self):
        feed = skewed_trace()
        cm = CostModel()
        sh = build(
            policy(curate=True, curate_threshold=0.5, curate_keep=0.125),
            cost_model=cm,
        )
        sh.run(iter(feed), batch_size=128)
        return sh, cm

    def test_every_dropped_record_is_accounted(self):
        sh, cm = self.run_curated()
        report = sh.run_report()["rebalance"]
        curated = report["curated_records"]
        assert report["curated_keys"] >= 1
        assert curated > 0
        assert curated == int(
            sh.metrics.value("rebalance_curated_total", stream="TCP")
        )
        assert cm.cycles("TCP") >= curated * cm.book.tuple_shed

    def test_curation_is_deterministic(self):
        first, _ = self.run_curated()
        second, _ = self.run_curated()
        assert (
            first.run_report()["rebalance"]["curated_records"]
            == second.run_report()["rebalance"]["curated_records"]
        )
        assert canonical_rows(first.query("q").results) == canonical_rows(
            second.query("q").results
        )


class TestRefusals:
    def test_unsupervised_processes_refused(self):
        with pytest.raises(PlanningError, match="supervise"):
            ShardedGigascope(shards=2, processes=True, rebalance=policy())

    def test_merge_nodes_refused(self):
        sh = ShardedGigascope(shards=2, rebalance=policy())
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="a")
        sh.add_query(AGG_TEXT.replace("sum(len)", "max(len)"), name="b")
        with pytest.raises(PlanningError, match="MERGE"):
            sh.add_merge("m", ["a", "b"])


class TestReportShape:
    def test_rebalance_section_only_when_enabled(self):
        feed = skewed_trace(seconds=5)
        plain = build(None)
        plain.run(iter(feed), batch_size=128)
        assert set(plain.run_report()) == {"streams", "queries"}

        rebalanced = build(policy())
        rebalanced.run(iter(feed), batch_size=128)
        report = rebalanced.run_report()
        assert set(report) == {"streams", "queries", "rebalance"}
        routing = report["rebalance"]["routing"]
        assert set(routing) == {
            "version", "shard_count", "num_slots", "slots", "hot"
        }
