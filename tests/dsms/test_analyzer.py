"""Semantic analysis: classification, validation, slotting."""

import pytest

from repro.errors import AnalysisError
from repro.dsms.expr import (
    AggregateCall,
    ScalarCall,
    StatefulCall,
    SuperAggregateCall,
    find_nodes,
)
from repro.dsms.parser.analyzer import analyze
from repro.dsms.parser.parser import parse_query
from repro.dsms.stateful import StatefulState
from repro.algorithms.bindings import (
    HEAVY_HITTERS_QUERY,
    MIN_HASH_QUERY,
    SUBSET_SUM_QUERY,
    heavy_hitters_library,
    subset_sum_library,
)


def analyzed(text, registries, stateful=None):
    if stateful is not None:
        registries.stateful = registries.stateful.merge(stateful)
    return analyze(parse_query(text), registries)


class TestClassification:
    def test_scalar_call(self, registries):
        result = analyzed("SELECT UMAX(len, 100) FROM TCP", registries)
        assert isinstance(result.ast.select[0].expr, ScalarCall)

    def test_aggregate_call_and_slot(self, registries):
        result = analyzed(
            "SELECT tb, sum(len), count(*) FROM TCP GROUP BY time/60 as tb",
            registries,
        )
        aggs = result.aggregates
        assert [a.name for a in aggs] == ["sum", "count"]
        assert [a.slot for a in aggs] == [0, 1]

    def test_duplicate_aggregates_share_slot(self, registries):
        result = analyzed(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/60 as tb"
            " HAVING sum(len) > 10",
            registries,
        )
        assert len(result.aggregates) == 1
        select_agg = find_nodes(result.ast.select[1].expr, AggregateCall)[0]
        having_agg = find_nodes(result.ast.having, AggregateCall)[0]
        assert select_agg.slot == having_agg.slot == 0

    def test_distinct_aggregate_args_get_distinct_slots(self, registries):
        result = analyzed(
            "SELECT tb, sum(len), sum(srcPort) FROM TCP GROUP BY time/60 as tb",
            registries,
        )
        assert len(result.aggregates) == 2

    def test_superaggregate_classification(self, registries):
        result = analyzed(MIN_HASH_QUERY.format(window=60, k=10), registries)
        names = {s.name for s in result.superaggregates}
        assert names == {"Kth_smallest_value", "count_distinct"}

    def test_stateful_classification(self, registries):
        result = analyzed(
            SUBSET_SUM_QUERY.format(window=20, target=10),
            registries,
            stateful=subset_sum_library(),
        )
        assert result.state_names == ("subsetsum_sampling_state",)
        assert isinstance(
            find_nodes(result.ast.where, StatefulCall)[0], StatefulCall
        )

    def test_unknown_function_rejected(self, registries):
        with pytest.raises(AnalysisError, match="unknown function"):
            analyzed("SELECT mystery(len) FROM TCP", registries)

    def test_unknown_superaggregate_rejected(self, registries):
        with pytest.raises(AnalysisError, match="unknown superaggregate"):
            analyzed(
                "SELECT tb FROM TCP GROUP BY time/60 as tb"
                " SUPERGROUP tb HAVING median$(len) > 1",
                registries,
            )

    def test_unknown_stream_rejected(self, registries):
        with pytest.raises(AnalysisError, match="unknown stream"):
            analyzed("SELECT a FROM NOPE", registries)


class TestWindowDerivation:
    def test_ordered_groupby_detected(self, registries):
        result = analyzed(
            "SELECT tb, srcIP FROM TCP GROUP BY time/60 as tb, srcIP",
            registries,
        )
        assert result.ordered_names == ("tb",)

    def test_uts_grouping_is_not_a_window(self, registries):
        # uts is unordered by schema design (paper §6.1).
        result = analyzed(
            "SELECT tb FROM TCP GROUP BY time/20 as tb, uts",
            registries,
        )
        assert result.ordered_names == ("tb",)

    def test_ordered_vars_folded_into_supergroup(self, registries):
        result = analyzed(
            MIN_HASH_QUERY.format(window=60, k=10), registries
        )
        assert result.supergroup_names[0] == "tb"
        assert "srcIP" in result.supergroup_names

    def test_default_supergroup_is_window_only(self, registries):
        result = analyzed(
            SUBSET_SUM_QUERY.format(window=20, target=10),
            registries,
            stateful=subset_sum_library(),
        )
        assert result.supergroup_names == ("tb",)


class TestValidation:
    def test_supergroup_var_must_be_groupby_var(self, registries):
        with pytest.raises(AnalysisError, match="not a GROUP BY variable"):
            analyzed(
                "SELECT tb FROM TCP GROUP BY time/60 as tb SUPERGROUP destIP",
                registries,
            )

    def test_cleaning_when_without_by_rejected(self, registries):
        with pytest.raises(AnalysisError, match="together"):
            analyzed(
                "SELECT tb FROM TCP GROUP BY time/60 as tb"
                " CLEANING WHEN count_distinct$(*) > 5",
                registries,
            )

    def test_where_may_not_use_group_aggregates(self, registries):
        with pytest.raises(AnalysisError, match="may not reference group aggregates"):
            analyzed(
                "SELECT tb FROM TCP WHERE sum(len) > 5 GROUP BY time/60 as tb",
                registries,
            )

    def test_select_column_must_be_groupby_var(self, registries):
        with pytest.raises(AnalysisError, match="not available"):
            analyzed(
                "SELECT destIP FROM TCP GROUP BY time/60 as tb, srcIP",
                registries,
            )

    def test_cleaning_when_restricted_to_supergroup_vars(self, registries):
        with pytest.raises(AnalysisError, match="not available"):
            analyzed(
                "SELECT tb, srcIP FROM TCP GROUP BY time/60 as tb, srcIP"
                " CLEANING WHEN srcIP > 5 CLEANING BY count(*) > 1",
                registries,
            )

    def test_duplicate_groupby_name_rejected(self, registries):
        with pytest.raises(AnalysisError, match="duplicate"):
            analyzed(
                "SELECT a FROM TCP GROUP BY srcIP as a, destIP as a",
                registries,
            )

    def test_groupby_expression_may_not_aggregate(self, registries):
        with pytest.raises(AnalysisError, match="only use columns and"):
            analyzed(
                "SELECT x FROM TCP GROUP BY sum(len) as x", registries
            )

    def test_aggregate_without_groupby_rejected(self, registries):
        with pytest.raises(AnalysisError, match="require a GROUP BY"):
            analyzed("SELECT sum(len) FROM TCP", registries)

    def test_cleaning_without_groupby_rejected(self, registries):
        lib = subset_sum_library()
        with pytest.raises(AnalysisError):
            analyzed(
                "SELECT len FROM TCP WHERE ssample(len, 10) = TRUE"
                " CLEANING WHEN ssdo_clean(5) = TRUE"
                " CLEANING BY ssclean_with(1) = TRUE",
                registries,
                stateful=lib,
            )


class TestKinds:
    def test_plain_selection(self, registries):
        assert analyzed("SELECT len FROM TCP WHERE len > 100", registries).kind == "selection"

    def test_stateful_selection(self, registries):
        from repro.algorithms.bindings import basic_subset_sum_library

        result = analyzed(
            "SELECT len FROM TCP WHERE ssbasic(len, 500) = TRUE",
            registries,
            stateful=basic_subset_sum_library(),
        )
        assert result.kind == "stateful_selection"
        assert result.state_names == ("basic_subsetsum_state",)

    def test_plain_aggregation(self, registries):
        result = analyzed(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/60 as tb", registries
        )
        assert result.kind == "aggregation"

    def test_cleaning_makes_sampling(self, registries):
        result = analyzed(
            HEAVY_HITTERS_QUERY.format(window=60, bucket=100),
            registries,
            stateful=heavy_hitters_library(),
        )
        assert result.kind == "sampling"

    def test_superaggregate_makes_sampling(self, registries):
        result = analyzed(MIN_HASH_QUERY.format(window=60, k=10), registries)
        assert result.kind == "sampling"
