"""UDAF framework: each built-in aggregate plus the registry."""

import pytest

from repro.errors import RegistryError
from repro.dsms.aggregates import (
    AggregateRegistry,
    AvgAggregate,
    CountAggregate,
    CountDistinctAggregate,
    FirstAggregate,
    LastAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
    default_aggregate_registry,
)


class TestSum:
    def test_update_and_value(self):
        agg = SumAggregate()
        for v in (1, 2, 3):
            agg.update(v)
        assert agg.value() == 6

    def test_retract(self):
        agg = SumAggregate()
        agg.update(10)
        agg.update(5)
        agg.retract(10)
        assert agg.value() == 5

    def test_merge(self):
        a, b = SumAggregate(), SumAggregate()
        a.update(1)
        b.update(2)
        a.merge(b)
        assert a.value() == 3

    def test_flags(self):
        assert SumAggregate.reversible and SumAggregate.mergeable


class TestCount:
    def test_counts_rows_not_values(self):
        agg = CountAggregate()
        agg.update("anything")
        agg.update(None)
        assert agg.value() == 2

    def test_retract_and_merge(self):
        a, b = CountAggregate(), CountAggregate()
        a.update(1)
        a.update(1)
        b.update(1)
        a.merge(b)
        a.retract(1)
        assert a.value() == 2


class TestMinMax:
    def test_min(self):
        agg = MinAggregate()
        for v in (5, 3, 9):
            agg.update(v)
        assert agg.value() == 3

    def test_max(self):
        agg = MaxAggregate()
        for v in (5, 3, 9):
            agg.update(v)
        assert agg.value() == 9

    def test_empty_is_none(self):
        assert MinAggregate().value() is None
        assert MaxAggregate().value() is None

    def test_not_reversible(self):
        with pytest.raises(NotImplementedError):
            MinAggregate().retract(1)

    def test_merge(self):
        a, b = MaxAggregate(), MaxAggregate()
        a.update(1)
        b.update(9)
        a.merge(b)
        assert a.value() == 9


class TestAvg:
    def test_average(self):
        agg = AvgAggregate()
        for v in (2, 4):
            agg.update(v)
        assert agg.value() == 3

    def test_empty_is_none(self):
        assert AvgAggregate().value() is None

    def test_retract(self):
        agg = AvgAggregate()
        agg.update(2)
        agg.update(4)
        agg.retract(2)
        assert agg.value() == 4


class TestCountDistinct:
    def test_distincts(self):
        agg = CountDistinctAggregate()
        for v in (1, 1, 2, 3, 3):
            agg.update(v)
        assert agg.value() == 3

    def test_merge_unions(self):
        a, b = CountDistinctAggregate(), CountDistinctAggregate()
        a.update(1)
        b.update(1)
        b.update(2)
        a.merge(b)
        assert a.value() == 2


class TestFirstLast:
    def test_first(self):
        agg = FirstAggregate()
        agg.update("a")
        agg.update("b")
        assert agg.value() == "a"

    def test_first_of_none_value(self):
        agg = FirstAggregate()
        agg.update(None)
        agg.update(5)
        assert agg.value() is None

    def test_last(self):
        agg = LastAggregate()
        agg.update("a")
        agg.update("b")
        assert agg.value() == "b"


class TestRegistry:
    def test_default_contents(self):
        registry = default_aggregate_registry()
        for name in ("sum", "count", "min", "max", "avg", "count_distinct",
                     "first", "last"):
            assert name in registry

    def test_create_returns_fresh_instances(self):
        registry = default_aggregate_registry()
        a = registry.create("sum")
        b = registry.create("sum")
        a.update(1)
        assert b.value() == 0

    def test_unknown_raises(self):
        with pytest.raises(RegistryError):
            default_aggregate_registry().create("median")

    def test_duplicate_rejected(self):
        registry = AggregateRegistry()
        registry.register("x", SumAggregate)
        with pytest.raises(RegistryError):
            registry.register("x", SumAggregate)

    def test_copy_is_independent(self):
        registry = default_aggregate_registry()
        clone = registry.copy()
        clone.register("custom", SumAggregate)
        assert "custom" not in registry
