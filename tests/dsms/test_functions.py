"""Scalar function registry and built-ins."""

import pytest

from repro.errors import RegistryError
from repro.dsms.functions import (
    FunctionRegistry,
    default_function_registry,
    hash32,
    hash_to_unit,
)


class TestRegistry:
    def test_register_and_call(self):
        registry = FunctionRegistry()
        registry.register("inc", lambda x: x + 1)
        assert registry.call("inc", [41]) == 42
        assert "inc" in registry

    def test_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.register("f", len)
        with pytest.raises(RegistryError):
            registry.register("f", len)

    def test_replace_allows_override(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: 1)
        registry.register("f", lambda: 2, replace=True)
        assert registry.call("f", []) == 2

    def test_unknown_raises(self):
        with pytest.raises(RegistryError):
            FunctionRegistry().get("missing")

    def test_copy_is_independent(self):
        registry = FunctionRegistry()
        registry.register("f", len)
        clone = registry.copy()
        clone.register("g", len)
        assert "g" not in registry


class TestHash32:
    def test_deterministic(self):
        assert hash32(12345) == hash32(12345)
        assert hash32(12345, seed=7) == hash32(12345, seed=7)

    def test_seeds_decorrelate(self):
        values = list(range(1000))
        a = [hash32(v, 1) for v in values]
        b = [hash32(v, 2) for v in values]
        matches = sum(1 for x, y in zip(a, b) if x == y)
        assert matches <= 1

    def test_range(self):
        for v in (0, 1, 2**31, 2**32 - 1, 123456789):
            assert 0 <= hash32(v) < 2**32

    def test_spreads_uniformly(self):
        # Bucket 10k consecutive integers into 16 bins; each bin should be
        # within 30% of the expected count.
        bins = [0] * 16
        for v in range(10_000):
            bins[hash32(v) >> 28] += 1
        expected = 10_000 / 16
        assert all(0.7 * expected < b < 1.3 * expected for b in bins)

    def test_hash_to_unit_interval(self):
        values = [hash_to_unit(v) for v in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.03


class TestBuiltins:
    def test_default_registry_contents(self):
        registry = default_function_registry()
        for name in ("UMAX", "UMIN", "H", "HU", "abs", "sqrt", "ip_str"):
            assert name in registry

    def test_umax_umin(self):
        registry = default_function_registry()
        assert registry.call("UMAX", [3, 7]) == 7
        assert registry.call("UMAX", [7.5, 3]) == 7.5
        assert registry.call("UMIN", [3, 7]) == 3

    def test_ip_str(self):
        registry = default_function_registry()
        assert registry.call("ip_str", [0x0A000001]) == "10.0.0.1"
        assert registry.call("ip_str", [0xFFFFFFFF]) == "255.255.255.255"

    def test_h_matches_hash32(self):
        registry = default_function_registry()
        assert registry.call("H", [42]) == hash32(42)
