"""EXPLAIN output for compiled plans and runtime instances."""

import pytest

from repro.dsms.explain import explain, explain_instance
from repro.dsms.parser.planner import compile_query
from repro.algorithms.bindings import (
    MIN_HASH_QUERY,
    SUBSET_SUM_QUERY,
    subset_sum_library,
)


class TestExplainPlan:
    def test_selection(self, registries):
        plan = compile_query("SELECT len FROM TCP WHERE len > 100", registries)
        text = explain(plan)
        assert "Query kind : selection" in text
        assert "WHERE" in text

    def test_aggregation(self, registries):
        plan = compile_query(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/60 as tb"
            " HAVING sum(len) > 5",
            registries,
        )
        text = explain(plan)
        assert "Query kind : aggregation" in text
        assert "[0] sum(len)" in text
        assert "Window     : (tb)" in text
        assert "HAVING" in text

    def test_sampling_subset_sum(self, registries):
        registries.stateful = registries.stateful.merge(subset_sum_library())
        plan = compile_query(
            SUBSET_SUM_QUERY.format(window=20, target=100), registries
        )
        text = explain(plan)
        assert "Query kind : sampling" in text
        assert "subsetsum_sampling_state" in text
        assert "FALSE evicts" in text
        assert "count_distinct$" in text

    def test_sampling_min_hash_superaggs(self, registries):
        plan = compile_query(MIN_HASH_QUERY.format(window=60, k=7), registries)
        text = explain(plan)
        assert "Kth_smallest_value$" in text
        assert "<group-fed>" in text
        assert "Supergroup : (tb, srcIP)" in text

    def test_ordered_output_marked(self, registries):
        plan = compile_query(
            "SELECT tb, count(*) FROM TCP GROUP BY time/60 as tb", registries
        )
        assert "tb [ordered]" in explain(plan)


class TestExplainInstance:
    def test_dag_rendering(self, gigascope):
        gigascope.use_stateful_library(subset_sum_library())
        gigascope.add_query(SUBSET_SUM_QUERY.format(window=20, target=10), name="ss")
        text = explain_instance(gigascope)
        assert " low  ss__lowsel  <- TCP" in text
        assert "high  ss  <- ss__lowsel" in text
        assert "SamplingOperator" in text

    def test_cost_shown_when_charged(self):
        from repro.dsms.cost import CostModel
        from repro.dsms.runtime import Gigascope
        from repro.streams.schema import TCP_SCHEMA
        from repro.streams.records import Record

        gs = Gigascope(cost_model=CostModel())
        gs.register_stream(TCP_SCHEMA)
        gs.add_query("SELECT len FROM TCP", name="sel")
        gs.run(iter([Record(TCP_SCHEMA, (0, 1, 1, 2, 100, 1024, 80, 6))]))
        assert "cycles]" in explain_instance(gs)
