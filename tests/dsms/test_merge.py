"""The order-preserving MERGE operator and its runtime integration."""

import pytest

from repro.errors import ExecutionError, PlanningError, SchemaError
from repro.dsms.operators.merge import MergeOperator
from repro.dsms.runtime import Gigascope
from repro.streams.records import Record
from repro.streams.schema import Attribute, Ordering, StreamSchema, TCP_SCHEMA

SCHEMA = StreamSchema(
    "M", [Attribute("t", "int", Ordering.INCREASING), Attribute("v", "int")]
)


def rec(t, v=0):
    return Record(SCHEMA, (t, v))


class TestOperator:
    def test_merges_in_order(self):
        merge = MergeOperator(SCHEMA, ["a", "b"])
        out = []
        out += merge.process_from("a", rec(1))
        out += merge.process_from("b", rec(2))
        out += merge.process_from("a", rec(3))
        out += merge.process_from("b", rec(4))
        out += merge.flush()
        assert [r["t"] for r in out] == [1, 2, 3, 4]

    def test_holds_until_all_sources_speak(self):
        merge = MergeOperator(SCHEMA, ["a", "b"])
        assert merge.process_from("a", rec(1)) == []
        assert merge.buffered == 1
        released = merge.process_from("b", rec(5))
        # t=1 is safe (both frontiers >= 1); t=5 must wait — source a may
        # still produce records between 1 and 5.
        assert [r["t"] for r in released] == [1]
        assert merge.buffered == 1

    def test_watermark_holds_back_ahead_source(self):
        merge = MergeOperator(SCHEMA, ["a", "b"])
        merge.process_from("b", rec(0))
        out = merge.process_from("a", rec(10))
        # b's frontier is 0: the record at t=10 must wait.
        assert [r["t"] for r in out] == [0]
        out = merge.process_from("b", rec(12))
        # a's frontier is now the minimum (10): t=10 flows, t=12 waits.
        assert [r["t"] for r in out] == [10]
        assert [r["t"] for r in merge.flush()] == [12]

    def test_interleaves_equal_timestamps_stably(self):
        merge = MergeOperator(SCHEMA, ["a", "b"])
        merge.process_from("a", rec(1, v=1))
        out = merge.process_from("b", rec(1, v=2))
        out += merge.flush()
        assert [r["v"] for r in out] == [1, 2]

    def test_ended_source_releases_watermark(self):
        merge = MergeOperator(SCHEMA, ["a", "b"])
        merge.process_from("a", rec(7))
        released = merge.end_source("b")
        assert [r["t"] for r in released] == [7]

    def test_out_of_order_source_rejected(self):
        merge = MergeOperator(SCHEMA, ["a", "b"])
        merge.process_from("a", rec(5))
        with pytest.raises(ExecutionError, match="violated ordering"):
            merge.process_from("a", rec(3))

    def test_unknown_source_rejected(self):
        merge = MergeOperator(SCHEMA, ["a", "b"])
        with pytest.raises(ExecutionError, match="unknown merge source"):
            merge.process_from("zzz", rec(1))

    def test_plain_process_rejected(self):
        merge = MergeOperator(SCHEMA, ["a", "b"])
        with pytest.raises(ExecutionError, match="process_from"):
            merge.process(rec(1))

    def test_needs_ordered_attribute(self):
        unordered = StreamSchema("U", [Attribute("x")])
        with pytest.raises(SchemaError):
            MergeOperator(unordered, ["a", "b"])

    def test_needs_two_sources(self):
        with pytest.raises(ExecutionError):
            MergeOperator(SCHEMA, ["solo"])


class TestRuntimeIntegration:
    def packets(self, src, times):
        return [
            Record(TCP_SCHEMA, (t, i + 1, src, 2, 100, 1024, 80, 6))
            for i, t in enumerate(times)
        ]

    def build(self):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.add_query("SELECT time, len FROM TCP WHERE srcIP = 1", name="a")
        gs.add_query("SELECT time, len FROM TCP WHERE srcIP = 2", name="b")
        merged = gs.add_merge("both", ["a", "b"])
        return gs, merged

    def test_merge_combines_query_outputs(self):
        gs, merged = self.build()
        records = self.packets(1, [0, 2, 4]) + self.packets(2, [1, 3, 5])
        records.sort(key=lambda r: r["uts"])  # interleave by uts arrival
        gs.run(iter(records))
        times = [r["time"] for r in merged.results]
        assert times == sorted(times)
        assert len(times) == 6

    def test_downstream_windowing_over_merge(self):
        gs, _merged = self.build()
        top = gs.add_query(
            "SELECT tb, count(*) FROM both GROUP BY time/2 as tb", name="top"
        )
        records = self.packets(1, [0, 1, 2, 3]) + self.packets(2, [0, 1, 2, 3])
        gs.run(iter(records))
        counts = {row["tb"]: row[1] for row in top.results}
        assert counts == {0: 4, 1: 4}

    def test_validation(self):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.add_query("SELECT time FROM TCP", name="only")
        with pytest.raises(PlanningError, match="at least two"):
            gs.add_merge("m", ["only"])
        with pytest.raises(PlanningError, match="not a registered query"):
            gs.add_merge("m", ["only", "ghost"])
        gs.add_query("SELECT time, len FROM TCP", name="wider")
        with pytest.raises(PlanningError, match="share one schema"):
            gs.add_merge("m", ["only", "wider"])
