"""Selection, stateful selection, and aggregation operators."""

import pytest

from repro.errors import ExecutionError
from repro.dsms.cost import CostModel
from repro.dsms.operators import build_operator
from repro.dsms.parser.planner import compile_query
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA
from repro.algorithms.bindings import basic_subset_sum_library


def packet(time=0, uts=0, src=1, dst=2, length=100, sport=1024, dport=80, proto=6):
    return Record(TCP_SCHEMA, (time, uts, src, dst, length, sport, dport, proto))


class TestSelection:
    def test_filters_and_projects(self, registries):
        plan = compile_query(
            "SELECT srcIP, len FROM TCP WHERE len > 100", registries
        )
        op = build_operator(plan)
        assert op.process(packet(length=50)) == []
        out = op.process(packet(length=200))
        assert len(out) == 1
        assert out[0]["srcIP"] == 1 and out[0]["len"] == 200

    def test_scalar_functions_in_select(self, registries):
        plan = compile_query("SELECT UMAX(len, 500) FROM TCP", registries)
        op = build_operator(plan)
        assert op.process(packet(length=200))[0][0] == 500

    def test_no_where_passes_everything(self, registries):
        plan = compile_query("SELECT len FROM TCP", registries)
        op = build_operator(plan)
        assert len(op.process(packet())) == 1

    def test_flush_is_empty(self, registries):
        plan = compile_query("SELECT len FROM TCP", registries)
        assert build_operator(plan).flush() == []

    def test_run_drives_whole_stream(self, registries):
        plan = compile_query("SELECT len FROM TCP WHERE len > 100", registries)
        op = build_operator(plan)
        outs = list(op.run([packet(length=l) for l in (50, 150, 250)]))
        assert [o[0] for o in outs] == [150, 250]


class TestStatefulSelection:
    def test_basic_subset_sum_state_persists(self, registries):
        registries.stateful = registries.stateful.merge(basic_subset_sum_library())
        plan = compile_query(
            "SELECT len FROM TCP WHERE ssbasic(len, 1000) = TRUE", registries
        )
        op = build_operator(plan)
        # 100-byte packets against z=1000: roughly one in ten is sampled,
        # via the credit counter, not randomly.
        outs = [op.process(packet(length=100)) for _ in range(100)]
        sampled = sum(1 for o in outs if o)
        assert sampled == 9 or sampled == 10

    def test_large_tuples_always_pass(self, registries):
        registries.stateful = registries.stateful.merge(basic_subset_sum_library())
        plan = compile_query(
            "SELECT len FROM TCP WHERE ssbasic(len, 100) = TRUE", registries
        )
        op = build_operator(plan)
        assert all(op.process(packet(length=200)) for _ in range(20))


class TestAggregation:
    def test_windowed_sum(self, registries):
        plan = compile_query(
            "SELECT tb, srcIP, sum(len) FROM TCP GROUP BY time/10 as tb, srcIP",
            registries,
        )
        op = build_operator(plan)
        outs = []
        outs += op.process(packet(time=0, src=1, length=10))
        outs += op.process(packet(time=5, src=1, length=20))
        outs += op.process(packet(time=5, src=2, length=5))
        assert outs == []  # window still open
        outs += op.process(packet(time=10, src=1, length=1))  # closes window 0
        assert {(o["srcIP"], o[2]) for o in outs} == {(1, 30), (2, 5)}
        final = op.flush()
        assert final[0][2] == 1

    def test_having_filters_groups(self, registries):
        plan = compile_query(
            "SELECT tb, srcIP, count(*) FROM TCP GROUP BY time/10 as tb, srcIP"
            " HAVING count(*) > 1",
            registries,
        )
        op = build_operator(plan)
        op.process(packet(time=0, src=1))
        op.process(packet(time=0, src=1))
        op.process(packet(time=0, src=2))
        outs = op.flush()
        assert len(outs) == 1 and outs[0]["srcIP"] == 1

    def test_where_filters_before_grouping(self, registries):
        plan = compile_query(
            "SELECT tb, count(*) FROM TCP WHERE len > 100 GROUP BY time/10 as tb",
            registries,
        )
        op = build_operator(plan)
        op.process(packet(length=50))
        op.process(packet(length=200))
        outs = op.flush()
        assert outs[0][1] == 1

    def test_multiple_windows_emit_in_order(self, registries):
        plan = compile_query(
            "SELECT tb, count(*) FROM TCP GROUP BY time/10 as tb", registries
        )
        op = build_operator(plan)
        outs = list(op.run([packet(time=t) for t in (0, 1, 12, 25)]))
        assert [(o["tb"], o[1]) for o in outs] == [(0, 2), (1, 1), (2, 1)]

    def test_empty_stream_flush(self, registries):
        plan = compile_query(
            "SELECT tb, count(*) FROM TCP GROUP BY time/10 as tb", registries
        )
        assert build_operator(plan).flush() == []

    def test_cost_charged_per_tuple(self, registries):
        cost = CostModel()
        plan = compile_query(
            "SELECT tb, count(*) FROM TCP GROUP BY time/10 as tb", registries
        )
        op = build_operator(plan, cost_model=cost, account="agg")
        op.process(packet())
        assert cost.cycles("agg") > 0
