"""Sharded parallel runtime: SPLIT / MERGE execution and equivalence.

The load-bearing property is serial equivalence: for a query whose state
is partitionable, running it hash-partitioned across N shards must yield
exactly the serial runtime's window output (up to within-window row
order, hence :func:`canonical_rows`).
"""

import pytest

from repro.errors import ExecutionError, PlanningError
from repro.dsms.cost import CostModel
from repro.dsms.parser.planner import compile_query, partition_info
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope, canonical_rows, stable_hash
from repro.streams.records import Record
from repro.streams.schema import PKT_SCHEMA, TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.algorithms.bindings import (
    HEAVY_HITTERS_QUERY,
    RESERVOIR_QUERY,
    SUBSET_SUM_QUERY,
    heavy_hitters_library,
    reservoir_library,
    subset_sum_library,
)


def trace(seconds=30, seed=11):
    config = TraceConfig(duration_seconds=seconds, rate_scale=0.02, seed=seed)
    return research_center_feed(config)


def with_supergroup(text, window):
    """Give the paper's query templates an explicit per-key supergroup so
    their SFUN state becomes shard-local (see partition_info)."""
    return text.replace(
        f"GROUP BY time/{window} as tb, srcIP, destIP, uts",
        f"GROUP BY time/{window} as tb, srcIP, destIP, uts"
        " SUPERGROUP BY tb, srcIP",
    ).replace(
        f"GROUP BY time/{window} as tb, srcIP\n",
        f"GROUP BY time/{window} as tb, srcIP SUPERGROUP BY tb, srcIP\n",
    )


HH_TEXT = with_supergroup(HEAVY_HITTERS_QUERY.format(window=5, bucket=100), 5)
SS_TEXT = with_supergroup(SUBSET_SUM_QUERY.format(window=5, target=500), 5)
AGG_TEXT = "SELECT tb, srcIP, sum(len), count(*) FROM TCP GROUP BY time/5 as tb, srcIP"


def serial_rows(text, library=None, feed=None):
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    if library is not None:
        gs.use_stateful_library(library)
    handle = gs.add_query(text, name="q")
    gs.run(feed if feed is not None else trace())
    return canonical_rows(handle.results)


def sharded_rows(text, shards, library=None, processes=False, feed=None):
    sh = ShardedGigascope(shards=shards, processes=processes)
    sh.register_stream(TCP_SCHEMA)
    if library is not None:
        sh.use_stateful_library(library)
    handle = sh.add_query(text, name="q")
    sh.run(feed if feed is not None else trace())
    return canonical_rows(handle.results)


class TestStableHash:
    def test_deterministic_across_values(self):
        assert stable_hash("10.0.0.1") == stable_hash("10.0.0.1")
        assert stable_hash(12345) == stable_hash(12345)

    def test_spreads_keys(self):
        buckets = {stable_hash(i) % 4 for i in range(1000)}
        assert buckets == {0, 1, 2, 3}


class TestPartitionInfo:
    def test_selection_is_unconstrained(self, registries):
        plan = compile_query("SELECT time, srcIP, len FROM TCP", registries)
        info = partition_info(plan)
        assert info.candidates is None
        assert set(info.passthrough) == {"time", "srcIP", "len"}

    def test_aggregation_partitions_on_groupby(self, registries):
        plan = compile_query(AGG_TEXT, registries)
        info = partition_info(plan)
        assert info.candidates == ("srcIP",)
        assert info.passthrough == ("srcIP",)

    def test_derived_groupby_is_no_candidate(self, registries):
        plan = compile_query(
            "SELECT tb, b, count(*) FROM TCP GROUP BY time/5 as tb, srcIP/2 as b",
            registries,
        )
        info = partition_info(plan)
        assert info.candidates == ()
        assert info.reason

    def test_sampling_needs_nonordered_supergroup(self, registries):
        library = subset_sum_library()
        registries.stateful = registries.stateful.merge(library)
        plan = compile_query(SUBSET_SUM_QUERY.format(window=5, target=500), registries)
        info = partition_info(plan)
        assert info.candidates == ()
        assert "SUPERGROUP" in info.reason

    def test_sampling_with_keyed_supergroup(self, registries):
        library = subset_sum_library()
        registries.stateful = registries.stateful.merge(library)
        plan = compile_query(SS_TEXT, registries)
        info = partition_info(plan)
        assert info.candidates == ("srcIP",)


class TestRegistration:
    def test_reservoir_without_supergroup_rejected(self):
        sh = ShardedGigascope(shards=2)
        sh.register_stream(TCP_SCHEMA)
        sh.use_stateful_library(reservoir_library())
        with pytest.raises(PlanningError, match="SUPERGROUP"):
            sh.add_query(RESERVOIR_QUERY.format(window=5, target=50), name="res")

    def test_query_without_ordered_output_rejected(self):
        sh = ShardedGigascope(shards=2)
        sh.register_stream(TCP_SCHEMA)
        with pytest.raises(PlanningError, match="ordered attribute"):
            sh.add_query(
                "SELECT srcIP, sum(len) FROM TCP GROUP BY time/5 as tb, srcIP",
                name="agg",
            )

    def test_conflicting_partition_constraints_rejected(self):
        sh = ShardedGigascope(shards=2)
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(
            "SELECT tb, srcIP, count(*) FROM TCP GROUP BY time/5 as tb, srcIP",
            name="by_src",
        )
        sh.add_query(
            "SELECT tb, destIP, count(*) FROM TCP GROUP BY time/5 as tb, destIP",
            name="by_dst",
        )
        with pytest.raises(PlanningError, match="no partition column"):
            sh.run(trace(seconds=1))

    def test_shards_must_be_positive(self):
        with pytest.raises(PlanningError):
            ShardedGigascope(shards=0)

    def test_partition_column_resolution(self):
        sh = ShardedGigascope(shards=2)
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="agg")
        assert sh.partition_column("TCP") == "srcIP"

    def test_explain_mentions_split_and_merge(self):
        sh = ShardedGigascope(shards=2)
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="agg")
        rendered = sh.explain()
        assert "split TCP by hash(srcIP) % 2" in rendered
        assert "merge agg" in rendered


class TestSerialEquivalence:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_aggregation(self, shards):
        assert sharded_rows(AGG_TEXT, shards) == serial_rows(AGG_TEXT)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_heavy_hitters(self, shards):
        expected = serial_rows(HH_TEXT, heavy_hitters_library())
        assert expected  # the trace must actually exercise the query
        got = sharded_rows(HH_TEXT, shards, heavy_hitters_library())
        assert got == expected

    @pytest.mark.parametrize("shards", [2, 3])
    def test_subset_sum_fixed_seed(self, shards):
        library = subset_sum_library(relax_factor=10.0)
        expected = serial_rows(SS_TEXT, library)
        assert expected
        got = sharded_rows(
            SS_TEXT, shards, subset_sum_library(relax_factor=10.0)
        )
        assert got == expected

    def test_single_shard_passthrough(self):
        assert sharded_rows(AGG_TEXT, 1) == serial_rows(AGG_TEXT)

    def test_selection_only(self):
        text = "SELECT time, srcIP, len FROM TCP WHERE len > 500"
        assert sharded_rows(text, 3) == serial_rows(text)


class TestProcessMode:
    def test_forked_workers_match_serial(self):
        library = subset_sum_library(relax_factor=10.0)
        expected = serial_rows(SS_TEXT, library)
        got = sharded_rows(
            SS_TEXT, 2, subset_sum_library(relax_factor=10.0), processes=True
        )
        assert got == expected

    def test_worker_failure_surfaces(self):
        sh = ShardedGigascope(shards=2, processes=True)
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="agg")
        bad = Record(PKT_SCHEMA, (0, 1, 2, 100, 1024, 80, 6))
        with pytest.raises(ExecutionError):
            sh.run(iter([bad]))


class TestCostAggregation:
    def test_accounts_aggregate_under_query_name(self):
        def cycles(shards, processes=False):
            cm = CostModel()
            sh = ShardedGigascope(shards=shards, processes=processes, cost_model=cm)
            sh.register_stream(TCP_SCHEMA)
            sh.add_query(AGG_TEXT, name="agg")
            sh.run(trace(seconds=10))
            return cm.cycles("agg")

        serial_cm = CostModel()
        gs = Gigascope(cost_model=serial_cm)
        gs.register_stream(TCP_SCHEMA)
        gs.add_query(AGG_TEXT, name="agg")
        gs.run(trace(seconds=10))
        reference = serial_cm.cycles("agg")
        assert reference > 0

        for shards, processes in ((2, False), (2, True)):
            total = cycles(shards, processes)
            # Same work, one account: only per-shard window-flush overhead
            # may differ from serial.
            assert total == pytest.approx(reference, rel=0.05)

    def test_cpu_percent_exposed(self):
        cm = CostModel()
        sh = ShardedGigascope(shards=2, cost_model=cm)
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="agg")
        sh.run(trace(seconds=10))
        assert sh.cpu_percent("agg", 10.0) > 0


class TestMultiStreamDag:
    def pkt(self, time, src, length):
        return Record(PKT_SCHEMA, (time, src, 2, length, 1024, 80, 6))

    def mixed_feed(self):
        tcp = list(trace(seconds=20))
        pkt = [self.pkt(t // 50, (t * 7) % 31, 100 + t % 400) for t in range(1000)]
        # Interleave the two streams the way a dual-tap deployment would.
        feed = []
        for i in range(max(len(tcp), len(pkt))):
            if i < len(tcp):
                feed.append(tcp[i])
            if i < len(pkt):
                feed.append(pkt[i])
        return feed

    def build(self, factory):
        dsms = factory()
        dsms.register_stream(TCP_SCHEMA)
        dsms.register_stream(PKT_SCHEMA)
        tcp_q = dsms.add_query(AGG_TEXT, name="tcp_agg")
        pkt_q = dsms.add_query(
            "SELECT tb, srcIP, sum(len) FROM PKT GROUP BY time/2 as tb, srcIP",
            name="pkt_agg",
        )
        dsms.run(iter(self.mixed_feed()))
        return canonical_rows(tcp_q.results), canonical_rows(pkt_q.results)

    def test_two_streams_two_chains(self):
        serial = self.build(Gigascope)
        sharded = self.build(lambda: ShardedGigascope(shards=3))
        assert sharded == serial
        # Both chains actually produced output.
        assert all(serial)

    def test_merge_of_query_outputs(self):
        def build(factory):
            dsms = factory()
            dsms.register_stream(TCP_SCHEMA)
            dsms.add_query(
                "SELECT time, srcIP, len FROM TCP WHERE len > 800", name="big"
            )
            dsms.add_query(
                "SELECT time, srcIP, len FROM TCP WHERE len < 80", name="small"
            )
            merged = dsms.add_merge("tails", ["big", "small"])
            dsms.run(trace(seconds=10))
            return canonical_rows(merged.results)

        serial = build(Gigascope)
        sharded = build(lambda: ShardedGigascope(shards=2))
        assert serial  # non-trivial
        assert sharded == serial
