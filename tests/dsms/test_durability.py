"""Durable resume: the write-ahead result journal and DurableRunner.

The contract (docs/RESILIENCE.md, "durable resume"): a run that dies
after N committed windows can be resumed *in a fresh process* from the
journal alone and produce byte-identical results and comparable metrics
to an uninterrupted run.  These tests simulate the crash in-process by
raising from the ``on_commit`` hook (the journal entry is already
fsync'd when the hook fires, exactly the state a killed process leaves
behind); the chaos suite does it for real with ``os._exit``.
"""

import pytest

from repro.dsms.durability import JOURNAL_VERSION, DurableRunner, ResultJournal
from repro.dsms.resilience import SupervisionPolicy
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope
from repro.errors import ExecutionError, TraceCorruptError
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

SS_TEXT = SUBSET_SUM_QUERY.format(window=5, target=200)
SS_SHARDED = SS_TEXT.replace(
    "GROUP BY time/5 as tb, srcIP, destIP, uts",
    "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
)


def feed(seconds=15, seed=3):
    config = TraceConfig(duration_seconds=seconds, rate_scale=0.01, seed=seed)
    return list(research_center_feed(config))


def build(shards=0, supervise=False, shed_threshold=None):
    if shards:
        gs = ShardedGigascope(
            shards=shards,
            processes=supervise,
            supervise=supervise,
            supervision=SupervisionPolicy(max_restarts=2) if supervise else None,
            shed_threshold=shed_threshold,
        )
    else:
        gs = Gigascope(shed_threshold=shed_threshold)
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
    gs.add_query(SS_SHARDED if shards else SS_TEXT, name="q")
    return gs


def rows_of(gs):
    return [r.values for r in gs.query("q").results]


def comparable(gs):
    return gs.metrics.comparable_items(exclude_prefixes=("supervisor_",))


class _Boom(Exception):
    """Stands in for the process dying right after a commit fsync."""


def crash_on_commit(n):
    state = {"commits": 0}

    def hook(consumed, kind):
        state["commits"] += 1
        if state["commits"] == n:
            raise _Boom(f"crash after commit {n}")

    return hook


class TestResultJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "j.bin")
        with ResultJournal(path, fresh=True) as journal:
            journal.append({"kind": "commit", "n": 1})
            journal.append({"kind": "final", "n": 2})
        entries = ResultJournal.read(path)
        assert [e["n"] for e in entries] == [1, 2]
        assert ResultJournal.last_entry(path)["kind"] == "final"

    def test_torn_tail_is_dropped_then_truncated(self, tmp_path):
        path = str(tmp_path / "j.bin")
        with ResultJournal(path, fresh=True) as journal:
            journal.append({"n": 1})
            journal.append({"n": 2})
        import os

        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 7)
        assert [e["n"] for e in ResultJournal.read(path)] == [1]
        # Reopening for append truncates the torn frame and writes cleanly.
        with ResultJournal(path) as journal:
            journal.append({"n": 3})
        assert [e["n"] for e in ResultJournal.read(path)] == [1, 3]

    def test_bad_magic_is_a_typed_corruption_error(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(b"NOTAJRNL" + b"\x00" * 16)
        with pytest.raises(TraceCorruptError):
            ResultJournal.read(str(path))

    def test_empty_file_is_a_fresh_journal(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(b"")
        with ResultJournal(str(path)) as journal:
            journal.append({"n": 1})
        assert len(ResultJournal.read(str(path))) == 1


class TestSerialDurability:
    def test_fresh_durable_run_matches_plain_run(self, tmp_path):
        ref = build()
        ref.run(iter(feed()))
        gs = build()
        runner = DurableRunner(gs, str(tmp_path / "j.bin"), batch_size=64)
        consumed = runner.run(iter(feed()))
        assert consumed == len(feed())
        assert rows_of(gs) == rows_of(ref)
        assert comparable(gs) == comparable(ref)

    def test_resume_after_final_restores_without_input(self, tmp_path):
        path = str(tmp_path / "j.bin")
        gs = build()
        DurableRunner(gs, path, batch_size=64).run(iter(feed()))

        def untouchable():
            raise AssertionError("resume after final must not read input")
            yield  # pragma: no cover

        fresh = build()
        consumed = DurableRunner(fresh, path).resume(untouchable())
        assert consumed == len(feed())
        assert rows_of(fresh) == rows_of(gs)

    @pytest.mark.parametrize("crash_at", [1, 2, 3])
    def test_crash_after_commit_resumes_byte_identically(self, tmp_path, crash_at):
        ref = build()
        ref.run(iter(feed()))
        path = str(tmp_path / "j.bin")
        gs = build()
        runner = DurableRunner(
            gs,
            path,
            batch_size=64,
            commit_interval=2,
            on_commit=crash_on_commit(crash_at),
        )
        with pytest.raises(_Boom):
            runner.run(iter(feed()))
        committed = ResultJournal.read(path)
        assert len(committed) == crash_at
        assert committed[-1]["journal_version"] == JOURNAL_VERSION

        fresh = build()
        consumed = DurableRunner(fresh, path, batch_size=64, commit_interval=2).resume(
            iter(feed())
        )
        assert consumed == len(feed())
        assert rows_of(fresh) == rows_of(ref)
        assert comparable(fresh) == comparable(ref)

    def test_crash_before_any_commit_degenerates_to_fresh_run(self, tmp_path):
        ref = build()
        ref.run(iter(feed()))
        path = str(tmp_path / "j.bin")
        # Journal exists but holds no commits (the process died early).
        ResultJournal(path, fresh=True).close()
        fresh = build()
        DurableRunner(fresh, path, batch_size=64).resume(iter(feed()))
        assert rows_of(fresh) == rows_of(ref)

    def test_torn_journal_tail_resumes_from_last_whole_commit(self, tmp_path):
        ref = build()
        ref.run(iter(feed()))
        path = str(tmp_path / "j.bin")
        gs = build()
        runner = DurableRunner(
            gs, path, batch_size=64, commit_interval=2, on_commit=crash_on_commit(2)
        )
        with pytest.raises(_Boom):
            runner.run(iter(feed()))
        import os

        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 7)
        fresh = build()
        DurableRunner(fresh, path, batch_size=64).resume(iter(feed()))
        assert rows_of(fresh) == rows_of(ref)

    def test_input_shorter_than_committed_prefix_is_refused(self, tmp_path):
        path = str(tmp_path / "j.bin")
        gs = build()
        runner = DurableRunner(
            gs, path, batch_size=64, commit_interval=2, on_commit=crash_on_commit(2)
        )
        with pytest.raises(_Boom):
            runner.run(iter(feed()))
        fresh = build()
        with pytest.raises(ExecutionError):
            DurableRunner(fresh, path).resume(iter(feed()[:10]))


class TestSupervisedDurability:
    def test_fresh_durable_run_matches_plain_supervised_run(self, tmp_path):
        ref = build(shards=2, supervise=True)
        ref.run(iter(feed()), batch_size=128)
        sh = build(shards=2, supervise=True)
        runner = DurableRunner(
            sh, str(tmp_path / "j.bin"), batch_size=128, commit_interval=2
        )
        consumed = runner.run(iter(feed()))
        assert consumed == len(feed())
        assert sorted(rows_of(sh)) == sorted(rows_of(ref))
        assert comparable(sh) == comparable(ref)

    @pytest.mark.parametrize("crash_at", [1, 2])
    def test_crash_after_commit_resumes_byte_identically(self, tmp_path, crash_at):
        ref = build(shards=2, supervise=True)
        ref.run(iter(feed()), batch_size=128)
        path = str(tmp_path / "j.bin")
        sh = build(shards=2, supervise=True)
        runner = DurableRunner(
            sh,
            path,
            batch_size=128,
            commit_interval=2,
            on_commit=crash_on_commit(crash_at),
        )
        with pytest.raises(_Boom):
            runner.run(iter(feed()))
        fresh = build(shards=2, supervise=True)
        consumed = DurableRunner(
            fresh, path, batch_size=128, commit_interval=2
        ).resume(iter(feed()))
        assert consumed == len(feed())
        assert sorted(rows_of(fresh)) == sorted(rows_of(ref))
        assert comparable(fresh) == comparable(ref)


class TestRefusals:
    def test_shedding_and_durability_do_not_mix(self, tmp_path):
        gs = build(shed_threshold=8)
        with pytest.raises(ExecutionError):
            DurableRunner(gs, str(tmp_path / "j.bin"))

    def test_unsupervised_process_shards_are_refused(self, tmp_path):
        sh = ShardedGigascope(shards=2, processes=True)
        sh.register_stream(TCP_SCHEMA)
        with pytest.raises(ExecutionError):
            DurableRunner(sh, str(tmp_path / "j.bin"))
