"""Property tests on the query front end: print/re-parse round trips.

Random expression ASTs are rendered with the nodes' ``__str__`` and parsed
back; the result must be structurally identical.  This pins the printer
and the parser to one another (operator precedence, parenthesisation,
argument lists, the ``$`` superaggregate suffix).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsms.expr import (
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.dsms.parser.parser import parse_expression, parse_query

_NAMES = ("srcIP", "destIP", "len", "tb", "HX", "uts")
_FUNCTIONS = ("H", "UMAX", "ssample", "count", "sum", "Kth_smallest_value$")


def _literals():
    return st.one_of(
        st.integers(0, 10**6).map(Literal),
        st.booleans().map(Literal),
        st.floats(0, 1000).map(lambda f: Literal(round(f, 3))),
    )


def _expressions(max_depth=3):
    base = st.one_of(
        _literals(),
        st.sampled_from(_NAMES).map(ColumnRef),
    )

    def extend(children):
        binary = st.builds(
            BinaryOp,
            st.sampled_from(["+", "-", "*", "/", "%", "=", "<>", "<", "<=",
                             ">", ">=", "AND", "OR"]),
            children,
            children,
        )
        unary = st.builds(UnaryOp, st.sampled_from(["-", "NOT"]), children)
        call = st.builds(
            lambda name, args: FunctionCall(name, tuple(args)),
            st.sampled_from(_FUNCTIONS),
            st.lists(children, max_size=3),
        )
        star_call = st.builds(
            lambda name: FunctionCall(name, (Star(),)),
            st.sampled_from(("count", "count_distinct$")),
        )
        return st.one_of(binary, unary, call, star_call)

    return st.recursive(base, extend, max_leaves=12)


class TestRoundTrip:
    @given(_expressions())
    @settings(max_examples=200, deadline=None)
    def test_expression_print_parse_roundtrip(self, expr):
        printed = str(expr)
        reparsed = parse_expression(printed)
        assert str(reparsed) == printed

    @given(_expressions())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_is_idempotent(self, expr):
        once = parse_expression(str(expr))
        twice = parse_expression(str(once))
        assert once == twice

    @given(
        st.lists(st.sampled_from(_NAMES), min_size=1, max_size=4, unique=True),
        _expressions(),
    )
    @settings(max_examples=100, deadline=None)
    def test_query_roundtrip(self, columns, where):
        text = (
            "SELECT "
            + ", ".join(columns)
            + " FROM TCP WHERE "
            + str(where)
        )
        ast = parse_query(text)
        assert parse_query(str(ast)) == ast
