"""The static query analyzer / linter (``repro.analysis``).

One table-driven test pins every rule to a query, a rule id, and an exact
``line:col`` span; further tests cover multi-diagnostic collection, pragma
suppression, caret rendering, strict compilation, and that every query
this repository ships lints clean.
"""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Severity,
    render_diagnostics,
)
from repro.analysis.linter import (
    default_lint_registries,
    lint_source,
    parse_pragmas,
)
from repro.analysis.rules import NOT_CONSTANT, fold_constant
from repro.dsms.parser.analyzer import Registries, analyze
from repro.dsms.parser.parser import parse_expression, parse_query
from repro.dsms.runtime import Gigascope
from repro.dsms.parser.planner import compile_query
from repro.dsms.span import Span
from repro.dsms.stateful import StatefulLibrary
from repro.errors import AnalysisError
from repro.streams.schema import TCP_SCHEMA


@pytest.fixture(scope="module")
def registries() -> Registries:
    return default_lint_registries()


def diag_tuples(result):
    return {(d.rule, d.span.line, d.span.col) for d in result.diagnostics if d.span}


# ---------------------------------------------------------------------------
# The rule table: (query, rule id, line, col of the expected diagnostic)
# ---------------------------------------------------------------------------

RULE_TABLE = [
    # SA001: no window variable, no CLEANING -> unbounded group table
    ("SELECT srcIP FROM TCP GROUP BY srcIP", "SA001", 1, 23),
    # SA002: sampling SFUN re-evaluated outside WHERE
    (
        "SELECT tb, ssample(len, 10)\n"
        "FROM TCP\n"
        "WHERE ssample(len, 10) = TRUE\n"
        "GROUP BY time/20 as tb, uts",
        "SA002",
        1,
        12,
    ),
    # SA003: SUPERGROUP with nothing that uses it
    (
        "SELECT tb, srcIP, sum(len)\n"
        "FROM TCP\n"
        "GROUP BY time/20 as tb, srcIP\n"
        "SUPERGROUP BY tb, srcIP",
        "SA003",
        4,
        1,
    ),
    # SA004: constant CLEANING BY
    (
        "SELECT tb, srcIP, count(*)\n"
        "FROM TCP\n"
        "GROUP BY time/20 as tb, srcIP\n"
        "CLEANING WHEN count_distinct$(*) > 100\n"
        "CLEANING BY TRUE",
        "SA004",
        5,
        13,
    ),
    # SA005: SFUN arity mismatch (ssample takes measure + target)
    ("SELECT len FROM TCP WHERE ssample(len) = TRUE", "SA005", 1, 27),
    # SA007: constant division by zero
    ("SELECT len/0 FROM TCP", "SA007", 1, 11),
    # SA008: aggregate arity mismatch
    ("SELECT srcIP, count(len, 2) FROM TCP GROUP BY time/20 as tb, srcIP",
     "SA008", 1, 15),
    # SA009: duplicate output column name
    ("SELECT len, len FROM TCP", "SA009", 1, 13),
    # SA010: arithmetic on a string
    ("SELECT len + 'x' FROM TCP", "SA010", 1, 12),
    # SA011: non-boolean WHERE predicate
    ("SELECT len FROM TCP WHERE len + 1", "SA011", 1, 31),
    # SA020: unknown stream
    ("SELECT x FROM NOPE", "SA020", 1, 15),
    # SA021: unknown function
    ("SELECT foo(len) FROM TCP", "SA021", 1, 8),
    # SA022: unknown superaggregate
    ("SELECT srcIP, bogus$(*) FROM TCP GROUP BY time/20 as tb, srcIP",
     "SA022", 1, 15),
    # SA023: duplicate group-by variable
    ("SELECT tb FROM TCP GROUP BY time/20 as tb, len as tb", "SA023", 1, 44),
    # SA024: GROUP BY references an unknown column
    ("SELECT tb FROM TCP GROUP BY nope as tb", "SA024", 1, 29),
    # SA025: aggregate inside a GROUP BY expression
    ("SELECT g FROM TCP GROUP BY sum(len) as g", "SA025", 1, 28),
    # SA026: SUPERGROUP variable that is not a GROUP BY variable
    (
        "SELECT tb\nFROM TCP\nGROUP BY time/20 as tb\nSUPERGROUP BY nope",
        "SA026",
        4,
        1,
    ),
    # SA027: HAVING references a raw column
    (
        "SELECT tb, sum(len)\nFROM TCP\nGROUP BY time/20 as tb\nHAVING len > 5",
        "SA027",
        4,
        8,
    ),
    # SA028: aggregate in WHERE
    ("SELECT tb, sum(len) FROM TCP WHERE sum(len) > 5 GROUP BY time/20 as tb",
     "SA028", 1, 36),
    # SA029: aggregate without GROUP BY
    ("SELECT sum(len) FROM TCP", "SA029", 1, 8),
    # SA030: CLEANING WHEN without CLEANING BY
    (
        "SELECT tb, count(*)\n"
        "FROM TCP\n"
        "GROUP BY time/20 as tb\n"
        "CLEANING WHEN count_distinct$(*) > 10",
        "SA030",
        4,
        1,
    ),
    # SA090: lexer failure
    ("SELECT ? FROM TCP", "SA090", 1, 8),
    # SA091: parser failure
    ("SELECT FROM TCP", "SA091", 1, 8),
    # SA101: group table beyond the cardinality budget
    (
        "SELECT tb, srcIP, destIP\nFROM TCP\nGROUP BY time/20 as tb, srcIP, destIP",
        "SA101",
        3,
        1,
    ),
    # SA102: prefilterable WHERE conjunct on a grouped query
    (
        "SELECT tb, srcIP, sum(len)\n"
        "FROM TCP\n"
        "WHERE len > 100\n"
        "GROUP BY time/20 as tb, srcIP",
        "SA102",
        3,
        11,
    ),
]


class TestRuleTable:
    @pytest.mark.parametrize(
        "query, rule, line, col",
        RULE_TABLE,
        ids=[case[1] for case in RULE_TABLE],
    )
    def test_rule_fires_with_span(self, registries, query, rule, line, col):
        result = lint_source(query, registries)
        assert (rule, line, col) in diag_tuples(result), result.render()

    @pytest.mark.parametrize(
        "query, rule, line, col",
        RULE_TABLE,
        ids=[case[1] for case in RULE_TABLE],
    )
    def test_rule_suppressed_by_pragma(self, registries, query, rule, line, col):
        suppressed = f"-- lint: disable={rule}\n{query}"
        result = lint_source(suppressed, registries)
        fired = {d.rule for d in result.diagnostics}
        assert rule not in fired


class TestMultiDiagnostic:
    def test_three_rules_in_one_invocation(self, registries):
        # The acceptance scenario: one query violating three distinct
        # rules reports all three, each with its own line:col span.
        query = (
            "SELECT srcIP, len + 'x'\n"
            "FROM TCP\n"
            "WHERE foo(len) = TRUE\n"
            "GROUP BY srcIP"
        )
        result = lint_source(query, registries)
        found = diag_tuples(result)
        assert ("SA010", 1, 19) in found  # arithmetic on a string
        assert ("SA021", 3, 7) in found  # unknown function foo
        assert ("SA001", 4, 1) in found  # unbounded group table
        assert len({rule for rule, _, _ in found}) >= 3

    def test_analyzer_collects_rather_than_stops(self, registries):
        # Two independent legality violations in different clauses: the
        # raise-first analyzer would only ever show the first.
        query = (
            "SELECT tb, sum(len)\n"
            "FROM TCP\n"
            "WHERE sum(len) > 5\n"
            "GROUP BY time/20 as tb\n"
            "HAVING len > 5"
        )
        result = lint_source(query, registries)
        rules = {d.rule for d in result.diagnostics}
        assert {"SA028", "SA027"} <= rules

    def test_diagnostics_in_source_order(self, registries):
        query = (
            "SELECT len + 'x'\n"
            "FROM TCP\n"
            "WHERE foo(len) = TRUE"
        )
        result = lint_source(query, registries)
        positions = [
            (d.span.line, d.span.col) for d in result.diagnostics if d.span
        ]
        assert positions == sorted(positions)

    def test_raise_mode_unchanged(self, registries):
        # Without a collector the analyzer still raises at the first error.
        ast = parse_query("SELECT foo(len) FROM TCP")
        with pytest.raises(AnalysisError, match="unknown function 'foo'"):
            analyze(ast, registries)


class TestPragmas:
    def test_parse_single(self):
        assert parse_pragmas("-- lint: disable=SA001\nSELECT 1") == {"SA001"}

    def test_parse_many_and_case(self):
        source = "--lint:disable=sa001, SA102\nSELECT 1"
        assert parse_pragmas(source) == {"SA001", "SA102"}

    def test_pragma_does_not_hide_other_rules(self, registries):
        query = "-- lint: disable=SA009\nSELECT len, len, len/0 FROM TCP"
        result = lint_source(query, registries)
        rules = {d.rule for d in result.diagnostics}
        assert "SA009" not in rules
        assert "SA007" in rules

    def test_disabled_rules_recorded(self, registries):
        result = lint_source(
            "-- lint: disable=SA001,SA101\nSELECT srcIP FROM TCP GROUP BY srcIP",
            registries,
        )
        assert result.disabled == {"SA001", "SA101"}
        assert result.clean


class TestRendering:
    def test_caret_block(self, registries):
        result = lint_source("SELECT len/0 FROM TCP", registries,
                             filename="q.gsql")
        rendered = result.render()
        lines = rendered.splitlines()
        assert lines[0] == (
            "q.gsql:1:11: SA007 error: constant division by zero"
        )
        assert lines[1] == "    SELECT len/0 FROM TCP"
        assert lines[2] == "    " + " " * 10 + "^"

    def test_caret_length_covers_lexeme(self):
        diag = Diagnostic("SA999", Severity.WARNING, "msg", Span(1, 8, 4))
        rendered = render_diagnostics([diag], "SELECT abcd FROM TCP", "f")
        assert rendered.splitlines()[2] == "    " + " " * 7 + "^^^^"

    def test_hint_rendered(self, registries):
        result = lint_source(
            "SELECT srcIP FROM TCP GROUP BY srcIP", registries
        )
        assert "hint:" in result.render()

    def test_no_span_renders_dash(self):
        diag = Diagnostic("SA999", Severity.ERROR, "whole-query problem")
        rendered = render_diagnostics([diag], "SELECT 1", "f")
        assert rendered.startswith("f:-: SA999 error:")


class TestConstantFolding:
    @pytest.mark.parametrize(
        "text, value",
        [
            ("TRUE", True),
            ("NOT TRUE", False),
            ("1 + 2 * 3", 7),
            ("10 / 4", 2),
            ("10.0 / 4", 2.5),
            ("7 % 4", 3),
            ("1 < 2", True),
            ("1 = 2 OR 3 >= 3", True),
            ("FALSE AND TRUE", False),
            ("-5", -5),
        ],
    )
    def test_folds(self, text, value):
        assert fold_constant(parse_expression(text)) == value

    def test_short_circuit_with_unknown_side(self):
        assert fold_constant(parse_expression("FALSE AND foo(x)")) is False
        assert fold_constant(parse_expression("TRUE OR foo(x)")) is True

    def test_non_constant(self):
        assert fold_constant(parse_expression("len + 1")) is NOT_CONSTANT


class TestCustomRegistries:
    def test_sa005_unregistered_state(self):
        registries = default_lint_registries()
        library = StatefulLibrary()
        library._sfuns["ghost"] = "missing_state"  # bypass: state never added
        library._callables["ghost"] = lambda state, x: bool(x)
        registries.stateful = registries.stateful.merge(library)
        result = lint_source(
            "SELECT len FROM TCP WHERE ghost(len) = TRUE", registries
        )
        messages = [d for d in result.diagnostics if d.rule == "SA005"]
        assert messages and "not registered" in messages[0].message

    def test_sa006_nondeterministic_scalar_in_group_by(self):
        import random

        registries = default_lint_registries()
        registries.scalars.register(
            "jitter", lambda x: x + random.random(), deterministic=False
        )
        result = lint_source(
            "SELECT g, count(*) FROM TCP GROUP BY time/20 as tb,"
            " jitter(len) as g",
            registries,
        )
        assert any(d.rule == "SA006" for d in result.diagnostics)

    def test_deterministic_survives_copy(self):
        registries = default_lint_registries()
        registries.scalars.register("noisy", lambda x: x, deterministic=False)
        clone = registries.scalars.copy()
        assert not clone.is_deterministic("noisy")
        assert clone.is_deterministic("H")


class TestStrictMode:
    WARNING_QUERY = "SELECT srcIP FROM TCP GROUP BY srcIP"

    def test_compile_query_strict_raises(self, registries):
        with pytest.raises(AnalysisError, match="SA001"):
            compile_query(self.WARNING_QUERY, registries, strict=True)

    def test_compile_query_default_still_compiles(self, registries):
        plan = compile_query(self.WARNING_QUERY, registries)
        assert plan.kind == "aggregation"

    def test_gigascope_strict_instance(self):
        gs = Gigascope(strict=True)
        gs.register_stream(TCP_SCHEMA)
        with pytest.raises(AnalysisError, match="SA001"):
            gs.add_query(self.WARNING_QUERY)

    def test_gigascope_per_query_override(self):
        gs = Gigascope(strict=True)
        gs.register_stream(TCP_SCHEMA)
        handle = gs.add_query(self.WARNING_QUERY, strict=False)
        assert handle.name

    def test_strict_accepts_clean_query(self):
        gs = Gigascope(strict=True)
        gs.register_stream(TCP_SCHEMA)
        handle = gs.add_query(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/20 as tb"
        )
        assert handle.level == "high"

    def test_strict_accepts_pragma_suppressed_query(self):
        gs = Gigascope(strict=True)
        gs.register_stream(TCP_SCHEMA)
        handle = gs.add_query(
            "-- lint: disable=SA001,SA101\n" + self.WARNING_QUERY
        )
        assert handle.name


class TestCorpusClean:
    """Every query this repository ships lints clean (or carries an
    explicit pragma) — the ISSUE's acceptance criterion."""

    def test_bindings_templates(self, registries):
        from repro.algorithms import bindings

        templates = [
            bindings.SUBSET_SUM_QUERY.format(target=1000, window=20),
            bindings.BASIC_SUBSET_SUM_QUERY.format(z=500, window=20),
            bindings.PREFILTER_QUERY.format(z=500),
            bindings.RESERVOIR_QUERY.format(target=100, window=20),
            bindings.HEAVY_HITTERS_QUERY.format(window=60, bucket=5),
            bindings.DISTINCT_SAMPLING_QUERY.format(window=60, capacity=500),
            bindings.MIN_HASH_QUERY.format(k=50, window=60),
        ]
        for template in templates:
            result = lint_source(template, registries)
            assert result.clean, result.render()

    def test_bench_harness_template(self, registries):
        query = "SELECT tb, sum(len) FROM TCP GROUP BY time/20 as tb"
        assert lint_source(query, registries).clean

    def test_prototype_sticky_query(self):
        # examples/prototype_new_algorithm.py defines its own SFUN pack;
        # lint its query against registries that include that pack.
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / (
            "examples/prototype_new_algorithm.py"
        )
        spec = importlib.util.spec_from_file_location("prototype", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        registries = default_lint_registries()
        registries.stateful = registries.stateful.merge(module.sticky_library())
        result = lint_source(module.STICKY_QUERY, registries)
        assert result.clean, result.render()

    #: Shipped counterexamples for the SA2xx/SA3xx rule docs: expected to
    #: warn (never error) under the default lint.
    UNSOUND = {"unsound_biased_avg.gsql", "unsound_unshardable.gsql"}

    def test_example_query_files(self, registries):
        from pathlib import Path

        files = sorted(
            (Path(__file__).resolve().parents[2] / "examples/queries").glob(
                "*.gsql"
            )
        )
        assert files, "examples/queries/*.gsql missing"
        for path in files:
            result = lint_source(path.read_text(), registries, str(path))
            assert result.ok, result.render()
            if path.name not in self.UNSOUND:
                assert result.clean, result.render()

    def test_unsound_examples_warn_as_documented(self, registries):
        from pathlib import Path

        from repro.analysis.execsafety import parse_target

        base = Path(__file__).resolve().parents[2] / "examples/queries"
        biased = lint_source(
            (base / "unsound_biased_avg.gsql").read_text(), registries
        )
        assert {d.rule for d in biased.diagnostics} == {
            "SA201",
            "SA202",
            "SA203",
            "SA204",
        }, biased.render()
        assert biased.ok  # warnings only: the query still runs serially

        text = (base / "unsound_unshardable.gsql").read_text()
        assert lint_source(text, registries).clean  # sound as a serial query
        deployed = lint_source(
            text, registries, target=parse_target("shards=4,durable")
        )
        assert {d.rule for d in deployed.diagnostics} == {
            "SA301",
            "SA302",
            "SA304",
        }, deployed.render()
        assert not deployed.ok  # the runtimes refuse this deployment


class TestCollector:
    def test_len_iter_bool(self):
        collector = DiagnosticCollector()
        assert not collector and len(collector) == 0
        collector.warning("SA001", "w", Span(2, 1))
        collector.error("SA007", "e", Span(1, 5))
        assert bool(collector) and len(collector) == 2
        assert collector.has_errors
        assert [d.rule for d in collector.sorted()] == ["SA007", "SA001"]

    def test_unknown_positions_sort_last(self):
        collector = DiagnosticCollector()
        collector.error("SA030", "no span")
        collector.warning("SA001", "spanned", Span(9, 9))
        assert [d.rule for d in collector.sorted()] == ["SA001", "SA030"]
