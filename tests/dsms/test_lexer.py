"""Tokenizer behaviour."""

import pytest

from repro.errors import LexError
from repro.dsms.parser.lexer import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.EOF]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where")[0] == (TokenType.KEYWORD, "SELECT")
        assert kinds("select")[0][1] == "SELECT"
        assert kinds("SeLeCt")[0][1] == "SELECT"

    def test_identifiers_case_sensitive(self):
        assert kinds("srcIP")[0] == (TokenType.IDENT, "srcIP")

    def test_numbers(self):
        assert kinds("42")[0] == (TokenType.NUMBER, 42)
        assert kinds("3.5")[0] == (TokenType.NUMBER, 3.5)

    def test_dangling_dot_after_number_rejected(self):
        # '1.' is not a valid literal in the grammar (no bare trailing dot).
        with pytest.raises(LexError):
            tokenize("1.")

    def test_strings(self):
        assert kinds("'hello'")[0] == (TokenType.STRING, "hello")
        assert kinds('"world"')[0] == (TokenType.STRING, "world")

    def test_eof_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_operators_longest_match(self):
        assert [v for _, v in kinds("a <= b <> c != d")] == [
            "a", "<=", "b", "<>", "c", "!=", "d",
        ]

    def test_comment_skipped(self):
        assert kinds("a -- comment here\nb") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]


class TestPaperSpecifics:
    def test_superaggregate_dollar_suffix(self):
        assert kinds("count_distinct$(*)")[0] == (TokenType.IDENT, "count_distinct$")

    def test_group_by_underscore_variant(self):
        # The paper's examples write both GROUP BY and GROUP_BY.
        assert kinds("GROUP_BY") == [
            (TokenType.KEYWORD, "GROUP"),
            (TokenType.KEYWORD, "BY"),
        ]

    def test_cleaning_keywords(self):
        values = [v for _, v in kinds("CLEANING WHEN CLEANING BY")]
        assert values == ["CLEANING", "WHEN", "CLEANING", "BY"]

    def test_supergroup_keyword(self):
        assert kinds("SUPERGROUP")[0] == (TokenType.KEYWORD, "SUPERGROUP")

    def test_true_false(self):
        assert [v for _, v in kinds("TRUE FALSE")] == ["TRUE", "FALSE"]


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a ; b")

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("'oops")

    def test_string_across_newline(self):
        with pytest.raises(LexError):
            tokenize("'line\nbreak'")

    def test_error_carries_line_number(self):
        try:
            tokenize("ok\nok\n;")
        except LexError as exc:
            assert exc.line == 3
        else:
            pytest.fail("expected LexError")


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert not token.is_keyword("FROM")

    def test_str(self):
        assert str(tokenize("abc")[0]) == "abc"
        assert str(tokenize("")[0]) == "<eof>"
