"""Resilience layer: checkpoints, supervised crash recovery, shedding.

The load-bearing property mirrors the sharded runtime's: a supervised
run that loses (or restarts) any single shard worker mid-stream must
still produce exactly the serial runtime's window output.  Recovery is
deterministic because every algorithm's state is seeded RNG plus
counters — restoring a checkpoint and replaying the journal reconstructs
the crashed worker's state bit for bit.
"""

import pickle

import pytest

from repro.errors import ExecutionError
from repro.dsms.cost import CostModel
from repro.dsms.resilience import SupervisionPolicy
from repro.dsms.runtime import Gigascope
from repro.dsms.sharded import ShardedGigascope, canonical_rows
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.testing.faults import Fault, FaultPlan, PoisonPill
from repro.algorithms.bindings import (
    HEAVY_HITTERS_QUERY,
    SUBSET_SUM_QUERY,
    heavy_hitters_library,
    subset_sum_library,
)

BATCH = 128  # trace() below yields 1969 records -> 16 batches per run


def trace(seconds=12, seed=11):
    config = TraceConfig(duration_seconds=seconds, rate_scale=0.02, seed=seed)
    return research_center_feed(config)


def with_supergroup(text, window):
    """Keyed supergroups make the SFUN state shard-local (see test_sharded)."""
    return text.replace(
        f"GROUP BY time/{window} as tb, srcIP, destIP, uts",
        f"GROUP BY time/{window} as tb, srcIP, destIP, uts"
        " SUPERGROUP BY tb, srcIP",
    ).replace(
        f"GROUP BY time/{window} as tb, srcIP\n",
        f"GROUP BY time/{window} as tb, srcIP SUPERGROUP BY tb, srcIP\n",
    )


SS_TEXT = with_supergroup(SUBSET_SUM_QUERY.format(window=5, target=500), 5)
HH_TEXT = with_supergroup(HEAVY_HITTERS_QUERY.format(window=5, bucket=100), 5)
AGG_TEXT = "SELECT tb, srcIP, sum(len), count(*) FROM TCP GROUP BY time/5 as tb, srcIP"


def serial_rows(text, library=None):
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    if library is not None:
        gs.use_stateful_library(library)
    handle = gs.add_query(text, name="q")
    gs.run(trace())
    return canonical_rows(handle.results)


def supervised(text, fault_plan=None, library=None, policy=None, shards=2):
    sh = ShardedGigascope(
        shards=shards, supervise=True, supervision=policy, fault_plan=fault_plan
    )
    sh.register_stream(TCP_SCHEMA)
    if library is not None:
        sh.use_stateful_library(library)
    handle = sh.add_query(text, name="q")
    sh.run(trace(), batch_size=BATCH)
    return canonical_rows(handle.results), sh


class TestCheckpointRestore:
    """Serial Gigascope.checkpoint/restore round trips."""

    def build(self, library=True):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        if library:
            gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        return gs

    @pytest.mark.parametrize(
        "text,needs_library",
        [(SS_TEXT, True), (AGG_TEXT, False)],
        ids=["sampling", "aggregation"],
    )
    def test_mid_stream_restore_matches_uninterrupted_run(self, text, needs_library):
        feed = list(trace())
        reference = self.build(needs_library)
        ref_handle = reference.add_query(text, name="q")
        reference.run(iter(feed))

        first = self.build(needs_library)
        first.add_query(text, name="q")
        first.start()
        first.feed(feed[: len(feed) // 2])
        # The snapshot must survive pickling: that is how it crosses the
        # worker/parent process boundary in supervised runs.
        blob = pickle.dumps(first.checkpoint())

        second = self.build(needs_library)
        handle = second.add_query(text, name="q")
        second.start()
        second.restore(pickle.loads(blob))
        second.feed(feed[len(feed) // 2 :])
        second.finish()
        assert [r.values for r in handle.results] == [
            r.values for r in ref_handle.results
        ]

    def test_restore_rejects_mismatched_queries(self):
        donor = self.build(library=False)
        donor.add_query(AGG_TEXT, name="other")
        donor.start()
        snapshot = donor.checkpoint()
        target = self.build(library=False)
        target.add_query(AGG_TEXT, name="q")
        target.start()
        with pytest.raises(ExecutionError, match="does not match"):
            target.restore(snapshot)

    def test_stateless_operator_rejects_nontrivial_snapshot(self):
        gs = self.build(library=False)
        gs.add_query("SELECT time, srcIP, len FROM TCP WHERE len > 100", name="q")
        operator = gs.query("q").operator
        assert operator.checkpoint() is None
        operator.restore(None)  # the stateless round trip is fine
        with pytest.raises(ExecutionError):
            operator.restore({"unexpected": 1})


class TestFaultHarness:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            Fault(shard=0, action="explode")

    def test_poison_pill_raises_on_unpickle(self):
        blob = pickle.dumps(PoisonPill())
        with pytest.raises(RuntimeError, match="poisoned pickle"):
            pickle.loads(blob)

    def test_epoch_zero_faults_do_not_refire(self):
        plan = FaultPlan([Fault(shard=0, action="drop_result")])
        assert plan.drops_result(0, epoch=0)
        assert not plan.drops_result(0, epoch=1)
        assert not plan.drops_result(1, epoch=0)


class TestSupervisedRecovery:
    """Kill any single worker at any point: output still equals serial."""

    @pytest.mark.parametrize("shard", [0, 1])
    @pytest.mark.parametrize("at_batch", [1, 7, 15], ids=["first", "middle", "last"])
    def test_kill_one_worker_matches_serial(self, shard, at_batch):
        expected = serial_rows(AGG_TEXT)
        plan = FaultPlan([Fault(shard=shard, action="kill", at_batch=at_batch)])
        rows, sh = supervised(AGG_TEXT, plan)
        assert rows == expected
        assert sh.last_supervision.restarts == {shard: 1}

    def test_kill_recovers_sampling_state_exactly(self):
        expected = serial_rows(SS_TEXT, subset_sum_library(relax_factor=10.0))
        assert expected
        plan = FaultPlan([Fault(shard=1, action="kill", at_batch=4)])
        rows, sh = supervised(
            SS_TEXT, plan, library=subset_sum_library(relax_factor=10.0)
        )
        assert rows == expected
        assert sh.last_supervision.total_restarts == 1

    def test_dropped_result_is_recovered(self):
        expected = serial_rows(HH_TEXT, heavy_hitters_library())
        plan = FaultPlan([Fault(shard=0, action="drop_result")])
        rows, sh = supervised(HH_TEXT, plan, library=heavy_hitters_library())
        assert rows == expected
        assert sh.last_supervision.restarts == {0: 1}

    def test_corrupt_result_queue_is_survived(self):
        expected = serial_rows(AGG_TEXT)
        plan = FaultPlan([Fault(shard=1, action="corrupt", at_batch=2)])
        rows, sh = supervised(AGG_TEXT, plan)
        assert rows == expected
        assert any("undecodable" in f for f in sh.last_supervision.failures)

    def test_stalled_worker_is_killed_and_restarted(self):
        expected = serial_rows(AGG_TEXT)
        plan = FaultPlan([Fault(shard=0, action="delay", at_batch=2, seconds=3.0)])
        rows, sh = supervised(
            AGG_TEXT, plan, policy=SupervisionPolicy(heartbeat_timeout=0.5)
        )
        assert rows == expected
        assert sh.last_supervision.restarts == {0: 1}
        assert any("stalled" in f for f in sh.last_supervision.failures)

    def test_recovery_uses_checkpoint_when_journal_truncated(self):
        expected = serial_rows(AGG_TEXT)
        plan = FaultPlan([Fault(shard=0, action="kill", at_batch=12)])
        rows, sh = supervised(
            AGG_TEXT,
            plan,
            policy=SupervisionPolicy(checkpoint_interval=2, journal_capacity=4),
        )
        assert rows == expected
        report = sh.last_supervision
        assert report.recoveries_from_checkpoint == {0: 1}
        # The bounded journal replayed only the tail past the checkpoint.
        assert report.replayed_batches[0] <= 4 + 1

    def test_no_fault_run_is_untouched(self):
        expected = serial_rows(AGG_TEXT)
        rows, sh = supervised(AGG_TEXT)
        assert rows == expected
        assert sh.last_supervision.total_restarts == 0
        assert sh.last_supervision.failures == []


class TestPermanentFailure:
    def test_restarts_exhausted_raises_promptly(self):
        plan = FaultPlan(
            [Fault(shard=1, action="kill", at_batch=1, every_epoch=True)]
        )
        sh = ShardedGigascope(
            shards=2,
            supervise=True,
            supervision=SupervisionPolicy(max_restarts=2),
            fault_plan=plan,
        )
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="q")
        with pytest.raises(ExecutionError, match="shard 1 failed permanently"):
            sh.run(trace(), batch_size=BATCH)
        assert sh.last_supervision.restarts == {1: 2}


class TestUnsupervisedFailFast:
    """Satellites 1 + 2: without supervision a dead worker fails the run
    promptly with the shard's identity — no deadlock on get() or put()."""

    def test_dead_worker_is_named_not_hung(self):
        plan = FaultPlan([Fault(shard=0, action="kill", at_batch=1)])
        sh = ShardedGigascope(
            shards=2, processes=True, fault_plan=plan, stall_timeout=20.0
        )
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="q")
        with pytest.raises(ExecutionError, match="shard 0"):
            sh.run(trace(), batch_size=BATCH)

    def test_dropped_result_is_named_not_hung(self):
        plan = FaultPlan([Fault(shard=1, action="drop_result")])
        sh = ShardedGigascope(
            shards=2, processes=True, fault_plan=plan, stall_timeout=20.0
        )
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="q")
        with pytest.raises(
            ExecutionError, match="shard 1.*without reporting a result"
        ):
            sh.run(trace(), batch_size=BATCH)


class TestLoadShedding:
    def test_serial_admission_shedding_is_counted_everywhere(self):
        cost = CostModel()
        gs = Gigascope(cost_model=cost, shed_threshold=200)
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.add_query(SS_TEXT, name="q")
        total = gs.run(trace(), batch_size=1000)
        report = gs.run_report()
        shed = report["streams"]["TCP"]["shed"]
        assert 0 < shed < total
        # The shed count flows through to the sampling operator's window
        # statistics and is charged to the cost model.
        assert report["queries"]["q"]["shed_tuples"] == shed
        assert cost.cycles("TCP") >= shed * cost.book.tuple_shed

    def test_no_threshold_means_no_shedding(self):
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.add_query(AGG_TEXT, name="q")
        gs.run(trace(), batch_size=1000)
        assert gs.run_report()["streams"]["TCP"]["shed"] == 0

    def test_sharded_inline_report_aggregates_shards(self):
        sh = ShardedGigascope(shards=2, shed_threshold=100)
        sh.register_stream(TCP_SCHEMA)
        sh.add_query(AGG_TEXT, name="q")
        sh.run(trace(), batch_size=1000)
        report = sh.run_report()
        assert report["streams"]["TCP"]["shed"] > 0

    def test_supervised_run_reports_worker_counters(self):
        rows, sh = supervised(AGG_TEXT)
        report = sh.run_report()
        assert set(report["streams"]) == {"TCP"}
        assert report["streams"]["TCP"]["shed"] == 0
        assert "q" not in report["queries"] or all(
            value >= 0 for value in report["queries"]["q"].values()
        )
