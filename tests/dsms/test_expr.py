"""Expression AST evaluation and tree utilities."""

import pytest

from repro.errors import ExecutionError
from repro.dsms.expr import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    EvalContext,
    Expr,
    FunctionCall,
    Literal,
    ScalarCall,
    Star,
    StatefulCall,
    SuperAggregateCall,
    UnaryOp,
    column_names,
    contains_node,
    evaluate,
    find_nodes,
    free_column_names,
    rewrite,
)


class DictContext(EvalContext):
    def __init__(self, columns=None, scalars=None):
        self.columns = columns or {}
        self.scalars = scalars or {}
        self.scalar_calls = []

    def column(self, name):
        return self.columns[name]

    def call_scalar(self, name, args):
        self.scalar_calls.append(name)
        return self.scalars[name](*args)


def lit(x):
    return Literal(x)


class TestArithmetic:
    def test_basic_ops(self):
        ctx = DictContext()
        assert evaluate(BinaryOp("+", lit(2), lit(3)), ctx) == 5
        assert evaluate(BinaryOp("-", lit(2), lit(3)), ctx) == -1
        assert evaluate(BinaryOp("*", lit(4), lit(3)), ctx) == 12
        assert evaluate(BinaryOp("%", lit(7), lit(3)), ctx) == 1

    def test_integer_division_buckets(self):
        # time/60 must bucket like SQL/C, not produce floats.
        ctx = DictContext({"time": 119})
        expr = BinaryOp("/", ColumnRef("time"), lit(60))
        assert evaluate(expr, ctx) == 1

    def test_float_division(self):
        assert evaluate(BinaryOp("/", lit(7.0), lit(2)), DictContext()) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate(BinaryOp("/", lit(1), lit(0)), DictContext())
        with pytest.raises(ExecutionError):
            evaluate(BinaryOp("/", lit(1.0), lit(0.0)), DictContext())

    def test_bool_divides_as_number_not_integer(self):
        # bool subclasses int, but TRUE/2 silently floor-dividing to 0 is
        # a wrong answer: booleans take true-division semantics.
        assert evaluate(BinaryOp("/", lit(True), lit(2)), DictContext()) == 0.5
        assert evaluate(BinaryOp("/", lit(3), lit(True)), DictContext()) == 3.0
        assert evaluate(BinaryOp("/", lit(False), lit(4)), DictContext()) == 0.0

    def test_bool_division_by_false_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(BinaryOp("/", lit(1), lit(False)), DictContext())

    def test_mixed_type_comparison_wrapped(self):
        # `srcIP > 100` over a string column must surface as a
        # span-carrying ExecutionError, not a raw TypeError traceback.
        from repro.dsms.span import Span

        ctx = DictContext({"srcIP": "10.0.0.1"})
        expr = BinaryOp(">", ColumnRef("srcIP"), lit(100), span=Span(3, 7, 1))
        with pytest.raises(ExecutionError) as err:
            evaluate(expr, ctx)
        assert "str" in str(err.value) and "int" in str(err.value)
        assert "line 3, col 7" in str(err.value)
        assert err.value.span == Span(3, 7, 1)

    def test_mixed_type_arithmetic_wrapped(self):
        ctx = DictContext({"name": "alpha"})
        for op in ("+", "-", "/"):
            with pytest.raises(ExecutionError):
                evaluate(BinaryOp(op, ColumnRef("name"), lit(2)), ctx)

    def test_equality_comparison_never_type_errors(self):
        # Python == on mismatched types returns False; keep that.
        assert evaluate(BinaryOp("=", lit("a"), lit(1)), DictContext()) is False
        assert evaluate(BinaryOp("<>", lit("a"), lit(1)), DictContext()) is True

    def test_unary_minus(self):
        assert evaluate(UnaryOp("-", lit(5)), DictContext()) == -5


class TestComparisonAndLogic:
    def test_comparisons(self):
        ctx = DictContext()
        assert evaluate(BinaryOp("=", lit(1), lit(1)), ctx) is True
        assert evaluate(BinaryOp("<>", lit(1), lit(2)), ctx) is True
        assert evaluate(BinaryOp("!=", lit(1), lit(1)), ctx) is False
        assert evaluate(BinaryOp("<=", lit(1), lit(1)), ctx) is True
        assert evaluate(BinaryOp(">", lit(2), lit(1)), ctx) is True

    def test_logic(self):
        ctx = DictContext()
        t, f = lit(True), lit(False)
        assert evaluate(BinaryOp("AND", t, f), ctx) is False
        assert evaluate(BinaryOp("OR", t, f), ctx) is True
        assert evaluate(UnaryOp("NOT", f), ctx) is True

    def test_and_short_circuits(self):
        # The right side would divide by zero if evaluated.
        ctx = DictContext()
        bomb = BinaryOp("/", lit(1), lit(0))
        expr = BinaryOp("AND", lit(False), bomb)
        assert evaluate(expr, ctx) is False

    def test_or_short_circuits(self):
        ctx = DictContext()
        bomb = BinaryOp("/", lit(1), lit(0))
        expr = BinaryOp("OR", lit(True), bomb)
        assert evaluate(expr, ctx) is True


class TestCalls:
    def test_scalar_call(self):
        ctx = DictContext(scalars={"double": lambda x: 2 * x})
        assert evaluate(ScalarCall("double", (lit(21),)), ctx) == 42
        assert ctx.scalar_calls == ["double"]

    def test_star_evaluates_to_one(self):
        assert evaluate(Star(), DictContext()) == 1

    def test_unclassified_call_rejected(self):
        with pytest.raises(ExecutionError, match="unclassified"):
            evaluate(FunctionCall("f", ()), DictContext())

    def test_default_context_hooks_raise(self):
        ctx = EvalContext()
        with pytest.raises(ExecutionError):
            ctx.column("x")
        with pytest.raises(ExecutionError):
            ctx.call_scalar("f", [])
        with pytest.raises(ExecutionError):
            ctx.aggregate_value(AggregateCall("sum", (), 0))
        with pytest.raises(ExecutionError):
            ctx.superaggregate_value(SuperAggregateCall("count_distinct", (), 0))
        with pytest.raises(ExecutionError):
            ctx.call_stateful(StatefulCall("f", "s", ()), [])


class TestTreeUtilities:
    def expr(self):
        # UMAX(sum(len), ssthreshold()) = TRUE
        return BinaryOp(
            "=",
            ScalarCall(
                "UMAX",
                (
                    AggregateCall("sum", (ColumnRef("len"),), 0),
                    StatefulCall("ssthreshold", "ss_state", ()),
                ),
            ),
            Literal(True),
        )

    def test_find_nodes(self):
        assert len(find_nodes(self.expr(), AggregateCall)) == 1
        assert len(find_nodes(self.expr(), StatefulCall)) == 1

    def test_contains_node(self):
        assert contains_node(self.expr(), ScalarCall)
        assert not contains_node(self.expr(), SuperAggregateCall)

    def test_column_names_includes_aggregate_args(self):
        assert column_names(self.expr()) == ["len"]

    def test_free_column_names_excludes_aggregate_args(self):
        assert free_column_names(self.expr()) == []

    def test_free_column_names_keeps_bare_columns(self):
        expr = BinaryOp("<", ColumnRef("HX"), AggregateCall("sum", (ColumnRef("len"),), 0))
        assert free_column_names(expr) == ["HX"]

    def test_rewrite_replaces_nodes(self):
        expr = BinaryOp("+", ColumnRef("a"), ColumnRef("b"))

        def swap(node):
            if isinstance(node, ColumnRef):
                return Literal(1)
            return None

        rewritten = rewrite(expr, swap)
        assert evaluate(rewritten, DictContext()) == 2

    def test_rewrite_is_bottom_up(self):
        expr = FunctionCall("f", (FunctionCall("g", ()),))
        order = []

        def record(node):
            if isinstance(node, FunctionCall):
                order.append(node.name)
            return None

        rewrite(expr, record)
        assert order == ["g", "f"]

    def test_walk_preorder(self):
        expr = BinaryOp("+", ColumnRef("a"), Literal(1))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["BinaryOp", "ColumnRef", "Literal"]

    def test_str_roundtrippable_forms(self):
        assert str(SuperAggregateCall("count_distinct", (Star(),), 0)) == "count_distinct$(*)"
        assert "sum(len)" in str(self.expr())
