"""STATE / SFUN framework."""

import pytest

from repro.errors import RegistryError, StatefulFunctionError
from repro.dsms.stateful import StatefulLibrary, StatefulState


def make_counter_library():
    library = StatefulLibrary()

    @library.state("counter_state")
    class CounterState(StatefulState):
        def __init__(self, start=0):
            self.count = start
            self.finalized = False

        @classmethod
        def initial(cls, old):
            # Carry half the old count into the new window.
            return cls(old.count // 2 if old is not None else 0)

        def on_window_final(self):
            self.finalized = True

    @library.sfun("bump", state="counter_state")
    def bump(state, amount):
        state.count += amount
        return state.count

    @library.sfun("read", state="counter_state")
    def read(state):
        return state.count

    return library


class TestRegistration:
    def test_state_and_sfun_lookup(self):
        library = make_counter_library()
        assert "bump" in library
        assert library.state_of("bump") == "counter_state"
        assert library.state_names() == ["counter_state"]
        assert library.sfun_names() == ["bump", "read"]

    def test_duplicate_state_rejected(self):
        library = make_counter_library()
        with pytest.raises(RegistryError):
            library.add_state("counter_state", StatefulState)

    def test_duplicate_sfun_rejected(self):
        library = make_counter_library()
        with pytest.raises(RegistryError):
            library.add_sfun("bump", "counter_state", lambda s: None)

    def test_state_must_subclass(self):
        library = StatefulLibrary()
        with pytest.raises(RegistryError, match="must subclass"):
            library.add_state("bad", object)  # type: ignore[arg-type]

    def test_unknown_lookups_raise(self):
        library = StatefulLibrary()
        with pytest.raises(RegistryError):
            library.state_of("nope")
        with pytest.raises(RegistryError):
            library.state_class("nope")
        with pytest.raises(RegistryError):
            library.callable_of("nope")


class TestRuntime:
    def test_invoke_mutates_shared_state(self):
        library = make_counter_library()
        states = library.instantiate_states(["counter_state"])
        assert library.invoke("bump", states, [5]) == 5
        assert library.invoke("bump", states, [2]) == 7
        assert library.invoke("read", states, []) == 7

    def test_window_carryover(self):
        library = make_counter_library()
        old = library.instantiate_states(["counter_state"])
        library.invoke("bump", old, [10])
        new = library.instantiate_states(["counter_state"], old_states=old)
        assert library.invoke("read", new, []) == 5

    def test_fresh_state_without_old(self):
        library = make_counter_library()
        states = library.instantiate_states(["counter_state"])
        assert library.invoke("read", states, []) == 0

    def test_invoke_without_state_raises(self):
        library = make_counter_library()
        with pytest.raises(StatefulFunctionError, match="was not allocated"):
            library.invoke("bump", {}, [1])

    def test_on_window_final_default_noop(self):
        StatefulState().on_window_final()  # must not raise


class TestMerge:
    def test_merge_combines_registries(self):
        a = make_counter_library()
        b = StatefulLibrary()

        @b.state("other_state")
        class Other(StatefulState):
            pass

        @b.sfun("noop", state="other_state")
        def noop(state):
            return True

        merged = a.merge(b)
        assert "bump" in merged and "noop" in merged
        assert set(merged.state_names()) == {"counter_state", "other_state"}

    def test_merge_state_collision_rejected(self):
        a = make_counter_library()
        b = make_counter_library()
        with pytest.raises(RegistryError, match="registered twice"):
            a.merge(b)

    def test_merge_does_not_mutate_inputs(self):
        a = make_counter_library()
        b = StatefulLibrary()

        @b.state("s2")
        class S2(StatefulState):
            pass

        @b.sfun("f2", state="s2")
        def f2(state):
            return 1

        a.merge(b)
        assert "f2" not in a
