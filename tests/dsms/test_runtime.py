"""The two-level Gigascope runtime."""

import pytest

from repro.errors import PlanningError, ExecutionError
from repro.dsms.cost import CostModel
from repro.dsms.runtime import Gigascope
from repro.streams.records import Record
from repro.streams.schema import TCP_SCHEMA
from repro.algorithms.bindings import subset_sum_library, SUBSET_SUM_QUERY


def packets(n=10, start_time=0, length=100):
    return [
        Record(TCP_SCHEMA, (start_time + i // 5, i + 1, 1, 2, length, 1024, 80, 6))
        for i in range(n)
    ]


class TestRegistration:
    def test_duplicate_stream_rejected(self, gigascope):
        with pytest.raises(PlanningError, match="already registered"):
            gigascope.register_stream(TCP_SCHEMA)

    def test_duplicate_query_name_rejected(self, gigascope):
        gigascope.add_query("SELECT len FROM TCP", name="q")
        with pytest.raises(PlanningError, match="already in use"):
            gigascope.add_query("SELECT len FROM TCP", name="q")

    def test_unknown_source_rejected(self, gigascope):
        with pytest.raises(Exception):
            gigascope.add_query("SELECT x FROM NOWHERE")

    def test_auto_names(self, gigascope):
        h1 = gigascope.add_query("SELECT len FROM TCP")
        h2 = gigascope.add_query("SELECT len FROM TCP")
        assert h1.name != h2.name


class TestLevels:
    def test_selection_on_source_is_low_level(self, gigascope):
        handle = gigascope.add_query("SELECT len FROM TCP")
        assert handle.level == "low"

    def test_aggregation_gets_auto_feeder(self, gigascope):
        handle = gigascope.add_query(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/2 as tb", name="agg"
        )
        assert handle.level == "high"
        feeder = gigascope.query("agg__lowsel")
        assert feeder.level == "low"

    def test_query_reading_from_query_is_high_level(self, gigascope):
        gigascope.add_query("SELECT time, len FROM TCP WHERE len > 10", name="sel")
        handle = gigascope.add_query("SELECT len FROM sel", name="top")
        assert handle.level == "high"


class TestExecution:
    def test_selection_results(self, gigascope):
        handle = gigascope.add_query("SELECT len FROM TCP WHERE len > 50")
        gigascope.run(iter(packets(10, length=100)))
        assert len(handle.results) == 10

    def test_chained_queries(self, gigascope):
        gigascope.add_query("SELECT time, len FROM TCP WHERE len > 50", name="sel")
        top = gigascope.add_query(
            "SELECT tb, count(*) FROM sel GROUP BY time/2 as tb", name="top"
        )
        gigascope.run(iter(packets(10)))
        # 10 packets across times 0..1 -> one window, count 10
        assert top.results[0][1] == 10

    def test_aggregation_through_auto_feeder(self, gigascope):
        handle = gigascope.add_query(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/1 as tb", name="agg"
        )
        gigascope.run(iter(packets(10, length=7)))
        total = sum(row[1] for row in handle.results)
        assert total == 70

    def test_sampling_query_end_to_end(self, gigascope):
        gigascope.use_stateful_library(subset_sum_library())
        handle = gigascope.add_query(
            SUBSET_SUM_QUERY.format(window=1, target=3), name="ss"
        )
        gigascope.run(iter(packets(50)))
        assert handle.results, "sampling query produced no output"

    def test_keep_results_false_discards(self, gigascope):
        handle = gigascope.add_query(
            "SELECT len FROM TCP", keep_results=False, name="sel"
        )
        gigascope.run(iter(packets(5)))
        assert handle.results == []

    def test_run_returns_record_count(self, gigascope):
        gigascope.add_query("SELECT len FROM TCP")
        assert gigascope.run(iter(packets(17))) == 17

    def test_record_for_unknown_stream_rejected(self, gigascope):
        from repro.streams.schema import PKT_SCHEMA

        gigascope.add_query("SELECT len FROM TCP")
        bad = Record(PKT_SCHEMA, (0, 1, 2, 100, 1024, 80, 6))
        with pytest.raises(ExecutionError, match="unregistered stream"):
            gigascope.run(iter([bad]))

    def test_unknown_query_lookup(self, gigascope):
        with pytest.raises(ExecutionError):
            gigascope.query("ghost")


class TestCostAccounting:
    def test_feeder_charges_copies(self):
        cost = CostModel()
        gs = Gigascope(cost_model=cost)
        gs.register_stream(TCP_SCHEMA)
        gs.add_query(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/2 as tb", name="agg"
        )
        gs.run(iter(packets(20)))
        feeder_cycles = cost.cycles("agg__lowsel")
        assert feeder_cycles >= 20 * cost.book.tuple_copy

    def test_forwarded_counter(self, gigascope):
        gigascope.add_query("SELECT time, len FROM TCP WHERE len > 50", name="sel")
        gigascope.add_query("SELECT len FROM sel", name="top")
        gigascope.run(iter(packets(10, length=100)))
        assert gigascope.query("sel").forwarded == 10

    def test_cpu_percent_uses_account(self):
        cost = CostModel()
        gs = Gigascope(cost_model=cost)
        gs.register_stream(TCP_SCHEMA)
        gs.add_query("SELECT len FROM TCP", name="sel")
        gs.run(iter(packets(100)))
        assert gs.cpu_percent("sel", 1.0) > 0


class TestFromRewrite:
    def test_rewrite_from(self):
        rewritten = Gigascope._rewrite_from(
            "SELECT a FROM TCP WHERE x > 1", "TCP", "feeder"
        )
        assert "FROM feeder" in rewritten
        assert "FROM TCP" not in rewritten

    def test_rewrite_failure_raises(self):
        with pytest.raises(PlanningError):
            Gigascope._rewrite_from("SELECT a FROM OTHER", "TCP", "feeder")

    def test_rewrite_ignores_comment_mentioning_from(self):
        # A textual replace would hit the comment (the first occurrence of
        # "FROM TCP") and leave the real clause pointing at the stream.
        text = (
            "-- derived FROM TCP by the capture pipeline\n"
            "SELECT len\n"
            "FROM TCP\n"
            "WHERE len > 1"
        )
        rewritten = Gigascope._rewrite_from(text, "TCP", "feeder")
        assert "-- derived FROM TCP by the capture pipeline" in rewritten
        assert "\nFROM feeder\n" in rewritten
        assert rewritten.count("feeder") == 1

    def test_query_with_commented_from_runs_through_feeder(self, gigascope):
        handle = gigascope.add_query(
            "-- counts FROM TCP per bucket\n"
            "SELECT tb, count(*) FROM TCP GROUP BY time/2 as tb",
            name="agg",
        )
        gigascope.run(iter(packets(10)))
        assert gigascope.query("agg__lowsel").level == "low"
        assert sum(row[1] for row in handle.results) == 10


class TestStrictRecompile:
    """The post-rewrite recompile must inherit the caller's strict flag
    and must not leak the auto-inserted feeder when it fails."""

    def test_recompile_preserves_strict(self, monkeypatch):
        import repro.dsms.runtime as runtime_mod

        calls = []
        real = runtime_mod.compile_query

        def spy(text, registries, query_name="Q", strict=False):
            calls.append((query_name, strict))
            return real(text, registries, query_name=query_name, strict=strict)

        monkeypatch.setattr(runtime_mod, "compile_query", spy)
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library())
        gs.add_query(
            SUBSET_SUM_QUERY.format(window=2, target=5), name="ss", strict=True
        )
        strict_flags = [s for (n, s) in calls if n == "ss"]
        assert len(strict_flags) == 2  # submission + post-rewrite recompile
        assert all(strict_flags)

    def test_failed_recompile_removes_feeder(self, monkeypatch):
        import repro.dsms.runtime as runtime_mod

        real = runtime_mod.compile_query
        arm = [True]

        def failing(text, registries, query_name="Q", strict=False):
            if arm[0] and "lowsel" in text:
                raise PlanningError("recompile boom")
            return real(text, registries, query_name=query_name, strict=strict)

        monkeypatch.setattr(runtime_mod, "compile_query", failing)
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        query = "SELECT tb, sum(len) FROM TCP GROUP BY time/2 as tb"
        with pytest.raises(PlanningError, match="recompile boom"):
            gs.add_query(query, name="agg")
        with pytest.raises(ExecutionError):
            gs.query("agg__lowsel")
        assert "agg__lowsel" not in gs.registries.schemas
        # The names are reusable once the failure is fixed.
        arm[0] = False
        handle = gs.add_query(query, name="agg")
        gs.run(iter(packets(10)))
        assert handle.results


class TestIncrementalRun:
    def test_start_feed_finish_matches_run(self):
        def run_oneshot():
            gs = Gigascope()
            gs.register_stream(TCP_SCHEMA)
            handle = gs.add_query(
                "SELECT tb, sum(len) FROM TCP GROUP BY time/2 as tb", name="agg"
            )
            gs.run(iter(packets(20)))
            return [tuple(r.values) for r in handle.results]

        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        handle = gs.add_query(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/2 as tb", name="agg"
        )
        gs.start()
        batch = packets(20)
        gs.feed(batch[:7])
        gs.feed(batch[7:])
        gs.finish()
        assert [tuple(r.values) for r in handle.results] == run_oneshot()

    def test_double_start_rejected(self, gigascope):
        gigascope.start()
        with pytest.raises(ExecutionError, match="already running"):
            gigascope.start()

    def test_feed_requires_start(self, gigascope):
        with pytest.raises(ExecutionError, match="start"):
            gigascope.feed(packets(1))

    def test_finish_requires_start(self, gigascope):
        with pytest.raises(ExecutionError):
            gigascope.finish()


class TestLowLevelAggregation:
    """Paper Figure 1: low-level nodes may do early partial aggregation."""

    def test_runs_at_low_level_without_feeder(self, gigascope):
        handle = gigascope.add_query(
            "SELECT tb, sum(len) FROM TCP GROUP BY time/2 as tb",
            name="agg",
            low_level_aggregation=True,
        )
        assert handle.level == "low"
        with pytest.raises(ExecutionError):
            gigascope.query("agg__lowsel")

    def test_same_results_as_high_level(self):
        from repro.dsms.runtime import Gigascope

        def run(low):
            gs = Gigascope()
            gs.register_stream(TCP_SCHEMA)
            handle = gs.add_query(
                "SELECT tb, sum(len) FROM TCP GROUP BY time/2 as tb",
                name="agg",
                low_level_aggregation=low,
            )
            gs.run(iter(packets(20)))
            return [tuple(r.values) for r in handle.results]

        assert run(True) == run(False)

    def test_early_reduction_cuts_copy_cost(self):
        from repro.dsms.cost import CostModel
        from repro.dsms.runtime import Gigascope

        def total_cycles(low):
            cost = CostModel()
            gs = Gigascope(cost_model=cost)
            gs.register_stream(TCP_SCHEMA)
            gs.add_query(
                "SELECT tb, sum(len) FROM TCP GROUP BY time/2 as tb",
                name="agg",
                low_level_aggregation=low,
            )
            gs.run(iter(packets(200)))
            return cost.total_cycles()

        assert total_cycles(True) < total_cycles(False) / 3

    def test_rejected_for_sampling_queries(self, gigascope):
        gigascope.use_stateful_library(subset_sum_library())
        with pytest.raises(PlanningError, match="only to plain aggregation"):
            gigascope.add_query(
                SUBSET_SUM_QUERY.format(window=2, target=5),
                name="ss",
                low_level_aggregation=True,
            )

    def test_rejected_for_selection(self, gigascope):
        with pytest.raises(PlanningError):
            gigascope.add_query(
                "SELECT len FROM TCP",
                name="sel",
                low_level_aggregation=True,
            )


class TestOverloadBehaviour:
    """Ring-buffer overflow surfaces as counted drops, not corruption."""

    def test_slow_polling_drops_oldest(self):
        from repro.dsms.runtime import Gigascope

        gs = Gigascope(ring_capacity=8)
        gs.register_stream(TCP_SCHEMA)
        handle = gs.add_query("SELECT len FROM TCP", name="sel")
        # Batch larger than the ring: records pushed before the poll
        # overwrite each other; the query only sees the survivors.
        gs.run(iter(packets(64)), batch_size=64)
        assert len(handle.results) == 8

    def test_small_batches_never_drop(self):
        from repro.dsms.runtime import Gigascope

        gs = Gigascope(ring_capacity=8)
        gs.register_stream(TCP_SCHEMA)
        handle = gs.add_query("SELECT len FROM TCP", name="sel")
        gs.run(iter(packets(64)), batch_size=4)
        assert len(handle.results) == 64
