"""Planner: specs, output schemas, superaggregate recipes."""

import pytest

from repro.errors import PlanningError
from repro.dsms.parser.parser import parse_query
from repro.dsms.parser.analyzer import analyze
from repro.dsms.parser.planner import compile_query, plan
from repro.streams.schema import Ordering
from repro.algorithms.bindings import (
    MIN_HASH_QUERY,
    SUBSET_SUM_QUERY,
    subset_sum_library,
)


def planned(text, registries, name="Q"):
    return plan(analyze(parse_query(text), registries), registries, query_name=name)


class TestOutputSchema:
    def test_alias_names(self, registries):
        q = planned("SELECT len AS size, srcIP FROM TCP", registries)
        assert q.output_schema.names == ("size", "srcIP")

    def test_synthesized_names(self, registries):
        q = planned("SELECT len + 1, len * 2 FROM TCP", registries)
        assert q.output_schema.names == ("col0", "col1")

    def test_name_collisions_deduplicated(self, registries):
        q = planned("SELECT len, len FROM TCP", registries)
        assert len(set(q.output_schema.names)) == 2

    def test_selection_preserves_ordered_marker(self, registries):
        q = planned("SELECT time, len FROM TCP WHERE len > 0", registries)
        assert q.output_schema.attribute("time").ordering is Ordering.INCREASING

    def test_grouped_query_marks_window_variable(self, registries):
        registries.stateful = registries.stateful.merge(subset_sum_library())
        q = compile_query(
            SUBSET_SUM_QUERY.format(window=20, target=10), registries
        )
        assert q.output_schema.attribute("tb").ordering is Ordering.INCREASING

    def test_only_first_ordered_column_marked(self, registries):
        q = planned(
            "SELECT tb, tb2 FROM TCP GROUP BY time/60 as tb, time/120 as tb2",
            registries,
        )
        assert q.output_schema.attribute("tb").ordering is Ordering.INCREASING
        assert q.output_schema.attribute("tb2").ordering is Ordering.NONE

    def test_schema_named_after_query(self, registries):
        q = planned("SELECT len FROM TCP", registries, name="myq")
        assert q.output_schema.name == "myq"


class TestSamplingSpec:
    def test_indices(self, registries):
        q = planned(MIN_HASH_QUERY.format(window=60, k=10), registries)
        spec = q.sampling
        assert spec is not None
        assert spec.group_by_names == ("tb", "srcIP", "HX")
        assert spec.ordered_indices == (0,)
        assert spec.supergroup_indices == (0, 1)
        assert spec.nonordered_supergroup_indices == (1,)

    def test_superagg_specs(self, registries):
        q = planned(MIN_HASH_QUERY.format(window=60, k=10), registries)
        spec = q.sampling
        by_name = {s.name: s for s in spec.superaggregates}
        kth = by_name["Kth_smallest_value"]
        assert kth.const_args == (10,)
        assert kth.feeds == "group"
        assert by_name["count_distinct"].feeds == "group"

    def test_empty_arg_superaggregate_allowed(self, registries):
        # Paper writes count_distinct$() in the reservoir query.
        q = planned(
            "SELECT tb FROM TCP GROUP BY time/60 as tb, uts"
            " CLEANING WHEN count_distinct$() > 5"
            " CLEANING BY count(*) > 0",
            registries,
        )
        assert q.sampling.superaggregates[0].name == "count_distinct"

    def test_nonconstant_superagg_arg_rejected(self, registries):
        with pytest.raises(PlanningError, match="must be constants"):
            planned(
                "SELECT tb, HX FROM TCP"
                " GROUP BY time/60 as tb, H(destIP) as HX"
                " SUPERGROUP tb"
                " HAVING HX <= Kth_smallest_value$(HX, HX)",
                registries,
            )

    def test_group_fed_superagg_needs_groupby_columns(self, registries):
        # `len` is a raw stream column, legal in WHERE but not evaluable in
        # the group context where group-fed superaggregates are maintained.
        with pytest.raises(PlanningError, match="group-by variables"):
            planned(
                "SELECT tb FROM TCP"
                " WHERE Kth_smallest_value$(len, 5) > 0"
                " GROUP BY time/60 as tb"
                " SUPERGROUP tb",
                registries,
            )

    def test_selection_plan_has_no_sampling_spec(self, registries):
        q = planned("SELECT len FROM TCP", registries)
        assert q.kind == "selection" and q.sampling is None


class TestCompileQuery:
    def test_end_to_end(self, registries):
        registries.stateful = registries.stateful.merge(subset_sum_library())
        q = compile_query(SUBSET_SUM_QUERY.format(window=20, target=10), registries)
        assert q.kind == "sampling"
        assert q.sampling.state_names == ("subsetsum_sampling_state",)
        # sum(len) appears in SELECT, HAVING, and CLEANING BY: one slot.
        assert len(q.sampling.aggregates) == 1
