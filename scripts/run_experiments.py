#!/usr/bin/env python
"""Regenerate every paper figure at full reproduction scale.

Writes the tables EXPERIMENTS.md records.  Run:

    python scripts/run_experiments.py [output-file]
"""

import sys
import time

from repro.bench import figures


def main() -> None:
    out = open(sys.argv[1], "w") if len(sys.argv) > 1 else sys.stdout

    def emit(title, text):
        out.write(f"\n=== {title} ===\n{text}\n")
        out.flush()

    t0 = time.time()
    acc = figures.figure2(target=200, duration_seconds=300, rate_scale=0.02)
    emit("Figure 2: accuracy of summation", acc.to_text())
    emit("Figure 3: samples per period", acc.samples_to_text())
    emit("Figure 4: cleaning phases per period", acc.cleanings_to_text())

    fig5 = figures.figure5(targets=(100, 1000, 10000), duration_seconds=3)
    emit("Figure 5: CPU usage for sampling", fig5.to_text())

    fig6 = figures.figure6(targets=(100, 1000, 10000), duration_seconds=3)
    emit("Figure 6: effect of low-level query type", fig6.to_text())

    sweep = figures.accuracy_sweep(targets=(20, 200, 2000),
                                   duration_seconds=300, rate_scale=0.02)
    emit("7.1 accuracy sweep", sweep.to_text())

    gamma = figures.gamma_sweep(gammas=(1.5, 2.0, 4.0, 8.0),
                                target=1000, duration_seconds=3)
    emit("7.2 gamma sensitivity", gamma.to_text())

    relax = figures.ablation_relax_factor(
        factors=(1.0, 2.0, 5.0, 10.0, 30.0, 100.0),
        target=200, duration_seconds=300, rate_scale=0.02)
    emit("Ablation: relaxation factor", relax.to_text())

    adj = figures.ablation_adjustment(target=200, duration_seconds=300,
                                      rate_scale=0.02)
    emit("Ablation: re-threshold rule", adj.to_text())

    pre = figures.ablation_prefilter(fractions=(1.0, 0.5, 0.2, 0.1, 0.02),
                                     target=1000, duration_seconds=3)
    emit("Ablation: prefilter fraction", pre.to_text())

    emit("Total runtime", f"{time.time() - t0:.1f}s")
    if out is not sys.stdout:
        out.close()


if __name__ == "__main__":
    main()
