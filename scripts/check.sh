#!/usr/bin/env bash
# Repository check gate: style (ruff), types (mypy), query lint over the
# shipped .gsql corpus, and the tier-1 pytest suite.
#
# ruff and mypy are optional (install with `pip install -e .[dev]`);
# when absent they are skipped with a notice so the gate still works in
# minimal containers.  Query lint and pytest always run.
#
# --chaos additionally runs the chaos suite (tests/chaos, marker
# `chaos`): real process kills plus durable resume, torn trace tails,
# stalled sources.  It is excluded from the default pytest run.
set -u

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

with_chaos=0
for arg in "$@"; do
    case "$arg" in
        --chaos) with_chaos=1 ;;
        *) echo "unknown option: $arg (supported: --chaos)" >&2; exit 2 ;;
    esac
done

failures=0

run() {
    echo "==> $*"
    if ! "$@"; then
        failures=$((failures + 1))
        echo "FAILED: $*" >&2
    fi
    echo
}

if command -v ruff >/dev/null 2>&1; then
    run ruff check src tests examples
else
    echo "==> ruff not installed; skipping style check (pip install -e .[dev])"
fi

if command -v mypy >/dev/null 2>&1; then
    run mypy src/repro/analysis
else
    echo "==> mypy not installed; skipping type check (pip install -e .[dev])"
fi

# One multi-file invocation so the whole corpus lands in one SARIF
# report (lint.sarif, uploaded by the CI workflow for code-scanning
# annotations).  Exit 1 = an example has lint *errors*; the deliberately
# unsound examples only warn under the default (serial) target.
echo "==> query lint over examples/queries/*.gsql (SARIF report: lint.sarif)"
if ! python -m repro.cli lint --format sarif --output lint.sarif examples/queries/*.gsql; then
    failures=$((failures + 1))
    echo "FAILED: query lint (see lint.sarif)" >&2
fi
echo

# Per-test wall-clock ceiling: the resilience tests exercise deadlock
# fixes, so a regression must fail loudly rather than hang the gate.
# Uses the pytest-timeout plugin when installed (pip install -e .[test]);
# otherwise tests/conftest.py enforces the same ceiling via SIGALRM.
pytest_args=()
if python -c "import pytest_timeout" >/dev/null 2>&1; then
    pytest_args+=(--timeout=120)
else
    echo "==> pytest-timeout not installed; relying on the conftest SIGALRM fallback"
fi

# Coverage is optional like ruff/mypy: when pytest-cov is installed (CI
# installs .[test]) enforce the floor and leave coverage.xml behind for
# the workflow to upload; in minimal containers just run the tests.
if python -c "import pytest_cov" >/dev/null 2>&1; then
    # Conservative floor (ratchet toward measured baseline - 2 as the
    # suite grows; lowering it needs a written justification in the PR).
    pytest_args+=(--cov=repro --cov-report=term --cov-report=xml --cov-fail-under=75)
else
    echo "==> pytest-cov not installed; skipping coverage floor (pip install -e .[test])"
fi

# (the guarded expansion keeps `set -u` happy when the array is empty)
run python -m pytest tests/ ${pytest_args[@]+"${pytest_args[@]}"}

if [ "$with_chaos" -eq 1 ]; then
    # A trailing -m overrides the `-m 'not chaos'` baked into addopts.
    # Coverage flags are reused when present, but the floor is a tier-1
    # property — don't let the chaos subset fail on it.
    chaos_args=()
    if python -c "import pytest_timeout" >/dev/null 2>&1; then
        chaos_args+=(--timeout=180)
    fi
    run python -m pytest tests/chaos ${chaos_args[@]+"${chaos_args[@]}"} -m chaos
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures check(s) failed" >&2
    exit 1
fi
echo "all checks passed"
