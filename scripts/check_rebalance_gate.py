#!/usr/bin/env python3
"""CI gate over BENCH_rebalance.json.

Run after ``pytest benchmarks/test_rebalance.py`` has regenerated the
JSON: fails if the rebalanced run's throughput on the 80%-hot-key
workload dropped below its recorded ``ci_min_speedup`` floor (2x static
hash sharding) — the elastic rebalancer's acceptance criterion.  The
floor lives in the JSON so the benchmark and the gate can't drift
apart.
"""

from __future__ import annotations

import json
import os
import sys

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_rebalance.json")


def main() -> int:
    try:
        with open(OUT_PATH, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read {OUT_PATH}: {exc}", file=sys.stderr)
        return 1
    entry = data.get("rebalanced_vs_static_hot_key")
    if entry is None:
        print("BENCH_rebalance.json has no rebalanced_vs_static_hot_key "
              "entry — did the benchmark run?", file=sys.stderr)
        return 1
    speedup = entry["speedup"]
    floor = entry.get("ci_min_speedup", 2.0)
    print(f"rebalanced vs static on {entry['hot_fraction']:.0%}-hot-key"
          f" workload: {speedup}x (floor {floor}x,"
          f" curated_fraction={entry['curated_fraction']})")
    if speedup < floor:
        print("rebalance gate FAILED: rebalanced throughput fell below "
              f"{floor}x static hash sharding", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
