#!/usr/bin/env python3
"""CI gate over BENCH_throughput.json.

Run after ``pytest benchmarks/test_throughput.py`` has regenerated the
JSON: fails if the vectorized selection hot path dropped below its
recorded ``ci_min_speedup`` floor (5x) — the columnar engine's reason
to exist.  The floor lives in the JSON so the benchmark and the gate
can't drift apart.
"""

from __future__ import annotations

import json
import os
import sys

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_throughput.json")


def main() -> int:
    try:
        with open(OUT_PATH, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read {OUT_PATH}: {exc}", file=sys.stderr)
        return 1
    entry = data.get("vectorized_selection_hot_path")
    if entry is None:
        print("BENCH_throughput.json has no vectorized_selection_hot_path "
              "entry — did the benchmark run?", file=sys.stderr)
        return 1
    speedup = entry["speedup"]
    floor = entry.get("ci_min_speedup", 5.0)
    print(f"vectorized selection hot path: {speedup}x (floor {floor}x)")
    if speedup < floor:
        print("throughput gate FAILED: vectorized selection regressed below "
              f"{floor}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
