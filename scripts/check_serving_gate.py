#!/usr/bin/env python3
"""CI gate over BENCH_serving.json.

Run after ``pytest benchmarks/test_serving.py`` has regenerated the
JSON: fails if shared-prefilter serving of the 64-standing-query
workload dropped below its recorded ``ci_min_speedup`` floor (3x the
sequential solo runs) — the standing-query server's acceptance
criterion.  The floor lives in the JSON so the benchmark and the gate
can't drift apart.
"""

from __future__ import annotations

import json
import os
import sys

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serving.json")


def main() -> int:
    try:
        with open(OUT_PATH, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read {OUT_PATH}: {exc}", file=sys.stderr)
        return 1
    entry = data.get("serving_prefilter_sharing")
    if entry is None:
        print("BENCH_serving.json has no serving_prefilter_sharing entry"
              " — did the benchmark run?", file=sys.stderr)
        return 1
    speedup = entry["speedup"]
    floor = entry.get("ci_min_speedup", 3.0)
    print(f"shared serving of {entry['queries']} standing queries"
          f" ({entry['signatures']} signatures): {speedup}x sequential"
          f" (floor {floor}x, byte_identical={entry['byte_identical']})")
    if speedup < floor:
        print("serving gate FAILED: shared serving fell below "
              f"{floor}x the sequential solo runs", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
