#!/usr/bin/env python
"""Distinct sampling: how many distinct sources, and how rare are they?

Runs Gibbons distinct sampling (the paper's reference [19]) twice —
standalone and as a query hosted by the generic sampling operator — and
uses the sample to estimate (a) the number of distinct source addresses
per window and (b) the fraction of sources that sent a single packet,
cross-checked against exact values.

Run:  python examples/distinct_count_report.py
"""

from collections import Counter

from repro import Gigascope, TCP_SCHEMA, TraceConfig, research_center_feed
from repro.algorithms import (
    DISTINCT_SAMPLING_QUERY,
    DistinctSampler,
    distinct_sampling_library,
)

WINDOW = 60
CAPACITY = 64


def main() -> None:
    config = TraceConfig(duration_seconds=60, rate_scale=0.05, seed=33)
    trace = list(research_center_feed(config))
    truth = Counter(r["srcIP"] for r in trace)
    true_distinct = len(truth)
    true_rarity = sum(1 for c in truth.values() if c == 1) / true_distinct

    # --- operator-hosted query -------------------------------------------------
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(distinct_sampling_library())
    handle = gs.add_query(
        DISTINCT_SAMPLING_QUERY.format(window=WINDOW, capacity=CAPACITY),
        name="ds",
    )
    gs.run(iter(trace))

    level = handle.results[0][3] if handle.results else 0
    estimate = len(handle.results) * 2 ** level
    singles = sum(1 for row in handle.results if row[2] == 1)
    rarity = singles / len(handle.results) if handle.results else 0.0

    print("Operator-hosted distinct sampling (capacity {}):".format(CAPACITY))
    print(f"  sample size        : {len(handle.results)} (level {level})")
    print(f"  distinct sources   : est {estimate:.0f}  vs true {true_distinct}")
    print(f"  rarity (singletons): est {rarity:.2f}  vs true {true_rarity:.2f}")

    # --- standalone cross-check --------------------------------------------------
    sampler = DistinctSampler(capacity=CAPACITY)
    sampler.extend(r["srcIP"] for r in trace)
    print("\nStandalone DistinctSampler:")
    print(f"  sample size        : {sampler.sample_size} (level {sampler.level})")
    print(f"  distinct estimate  : {sampler.distinct_estimate():.0f}")
    print(f"  rarity estimate    : {sampler.rarity_estimate():.2f}")
    operator_sample = {row['srcIP'] for row in handle.results}
    assert operator_sample == set(sampler.sample()), "the two must agree exactly"
    print("  (operator and standalone samples are identical)")


if __name__ == "__main__":
    main()
