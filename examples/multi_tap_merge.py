#!/usr/bin/env python
"""Multi-tap monitoring: MERGE two reduced streams, window on the result.

Gigascope deployments watch several taps at once; the MERGE operator
combines their (reduced) outputs while preserving time order so windowed
queries downstream keep working.  Here two low-level selections split one
feed into "inbound" and "outbound" halves — standing in for two physical
taps — a merge recombines them, and a heavy-hitters sampling query runs
over the merged stream.

Run:  python examples/multi_tap_merge.py
"""

from collections import Counter

from repro import Gigascope, TCP_SCHEMA, TraceConfig, research_center_feed
from repro.algorithms import HEAVY_HITTERS_QUERY, heavy_hitters_library
from repro.dsms.functions import _ip_str as ip_str

WINDOW = 30


def main() -> None:
    config = TraceConfig(duration_seconds=60, rate_scale=0.02, seed=55)
    trace = list(research_center_feed(config))

    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(heavy_hitters_library(bucket_width=100))

    select_all = "SELECT time, uts, srcIP, destIP, len, srcPort, destPort, protocol FROM TCP"
    gs.add_query(select_all + " WHERE destPort = 80", name="tap_web",
                 keep_results=False)
    gs.add_query(select_all + " WHERE destPort <> 80", name="tap_other",
                 keep_results=False)
    merged = gs.add_merge("merged", ["tap_web", "tap_other"])
    hh = gs.add_query(
        HEAVY_HITTERS_QUERY.format(window=WINDOW, bucket=100).replace(
            "FROM TCP", "FROM merged"
        ),
        name="hh",
    )
    gs.run(iter(trace))

    print("Query DAG:")
    print(gs.explain())

    merged_times = [r["time"] for r in merged.results]
    assert merged_times == sorted(merged_times), "merge must preserve order"
    print(f"\nMerged stream: {len(merged.results):,} records, time-ordered.")

    print(f"\nTop sources per {WINDOW}s window over the merged taps:")
    per_window = {}
    for row in hh.results:
        per_window.setdefault(row["tb"], []).append((row[3], row["srcIP"]))
    truth = Counter(r["srcIP"] for r in trace)
    for window in sorted(per_window):
        top = sorted(per_window[window], reverse=True)[:3]
        for packets, src in top:
            print(
                f"  window {window}: {ip_str(src):>15}"
                f"  est={packets:<6} true(whole trace)={truth[src]}"
            )


if __name__ == "__main__":
    main()
