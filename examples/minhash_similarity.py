#!/usr/bin/env python
"""Min-hash: per-source destination sketches and set resemblance.

Runs the paper's §6.6 min-hash query — the k smallest hash values of
destination IPs per source IP, maintained by the ``Kth_smallest_value$``
superaggregate with KMV cleaning — then uses the resulting sketches to
find the pair of busy sources with the most similar destination sets,
cross-checking the estimate against the exact Jaccard resemblance.

Run:  python examples/minhash_similarity.py
"""

from collections import defaultdict
from itertools import combinations

from repro import Gigascope, TCP_SCHEMA, TraceConfig, research_center_feed
from repro.algorithms import MIN_HASH_QUERY
from repro.dsms.functions import _ip_str as ip_str

K = 40
WINDOW = 60


def exact_resemblance(a: set, b: set) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def kmv_resemblance(sketch_a: set, sketch_b: set, k: int) -> float:
    union = sorted(sketch_a | sketch_b)[:k]
    if not union:
        return 0.0
    return sum(1 for h in union if h in sketch_a and h in sketch_b) / len(union)


def main() -> None:
    config = TraceConfig(duration_seconds=60, rate_scale=0.05)
    trace = list(research_center_feed(config))

    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    query = gs.add_query(MIN_HASH_QUERY.format(window=WINDOW, k=K), name="mh")
    gs.run(iter(trace))

    sketches = defaultdict(set)
    for row in query.results:
        sketches[row["srcIP"]].add(row["HX"])

    truth = defaultdict(set)
    for record in trace:
        truth[record["srcIP"]].add(record["destIP"])

    busy = sorted(sketches, key=lambda s: len(truth[s]), reverse=True)[:12]
    print(f"Min-hash sketches (k={K}) for the {len(busy)} busiest sources.\n")
    print(f"{'source A':>15} {'source B':>15} {'estimated':>10} {'exact':>7}")
    scored = []
    for a, b in combinations(busy, 2):
        est = kmv_resemblance(sketches[a], sketches[b], K)
        exact = exact_resemblance(truth[a], truth[b])
        scored.append((est, exact, a, b))
    scored.sort(reverse=True)
    for est, exact, a, b in scored[:8]:
        print(f"{ip_str(a):>15} {ip_str(b):>15} {est:>10.3f} {exact:>7.3f}")

    errors = [abs(est - exact) for est, exact, _, _ in scored]
    print(f"\nMean |estimate - exact| over {len(scored)} pairs: {sum(errors)/len(errors):.3f}")


if __name__ == "__main__":
    main()
