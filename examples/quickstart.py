#!/usr/bin/env python
"""Quickstart: run the paper's dynamic subset-sum sampling query.

Registers the TCP packet stream, merges the subset-sum SFUN pack (with
the paper's relaxed threshold carryover, f=10), submits the §6.1 query,
and replays one minute of the bursty research-center feed.  The output
is one row per sampled packet with its subset-sum adjusted weight, from
which per-window traffic totals are estimated.

Run:  python examples/quickstart.py
"""

from collections import defaultdict

from repro import Gigascope, TCP_SCHEMA, TraceConfig, research_center_feed
from repro.algorithms import SUBSET_SUM_QUERY, subset_sum_library


def main() -> None:
    # 1. A DSMS instance with the TCP packet stream registered.
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)

    # 2. The subset-sum SFUN pack: ssample/ssdo_clean/ssclean_with/
    #    ssfinal_clean/ssthreshold, sharing one state per supergroup.
    gs.use_stateful_library(subset_sum_library(relax_factor=10.0))

    # 3. The paper's sampling query: ~100 samples per 20-second window.
    query_text = SUBSET_SUM_QUERY.format(window=20, target=100)
    print("Submitting query:")
    print(query_text)
    query = gs.add_query(query_text, name="ss")

    # 4. Replay one minute of the bursty feed (seeded, reproducible).
    config = TraceConfig(duration_seconds=60, rate_scale=0.01)
    records = gs.run(research_center_feed(config))
    print(f"Processed {records} packets.")

    # 5. Inspect the sample: estimated traffic per window.
    estimates = defaultdict(float)
    counts = defaultdict(int)
    for row in query.results:
        estimates[row["tb"]] += row[3]
        counts[row["tb"]] += 1
    print(f"\n{'window':>7} {'samples':>8} {'est. bytes':>12}")
    for window in sorted(estimates):
        print(f"{window:>7} {counts[window]:>8} {estimates[window]:>12,.0f}")

    print("\nPer-window operator stats (admissions, cleanings):")
    for stats in query.operator.window_stats:
        print(
            f"  window {stats.window[0]}: seen={stats.tuples_seen}"
            f" admitted={stats.tuples_admitted}"
            f" cleanings={stats.cleaning_phases}"
            f" output={stats.output_tuples}"
        )


if __name__ == "__main__":
    main()
