#!/usr/bin/env python
"""Reservoir sampling: Vitter's algorithms vs the operator formulation.

Compares three ways of drawing 100 uniform samples per window:

* Algorithm R (textbook reservoir) and Algorithm X (skip generation) from
  the standalone library;
* the paper's §6.6 operator query — buffered candidates with CLEANING
  phases (tolerance T), i.e. how the generic sampling operator hosts the
  algorithm.

The report shows the work saved by skip generation and checks sample
uniformity (the mean of sampled positions should sit near the middle of
the stream).

Run:  python examples/reservoir_vs_operator.py
"""

import random
import statistics

from repro import Gigascope, TCP_SCHEMA, TraceConfig, research_center_feed
from repro.algorithms import (
    RESERVOIR_QUERY,
    ReservoirSampler,
    SkipReservoirSampler,
    reservoir_library,
)

N = 100
STREAM = 50_000


def main() -> None:
    rng = random.Random(7)

    # --- standalone: R vs X -----------------------------------------------------
    algo_r = ReservoirSampler(N, random.Random(1))
    algo_x = SkipReservoirSampler(N, random.Random(2))
    r_touches = 0
    for position in range(STREAM):
        if algo_r.offer(position):
            r_touches += 1
        algo_x.offer(position)
    print(f"Stream of {STREAM:,} items, reservoir of {N}:")
    print(f"  Algorithm R replacements: {r_touches:,}")
    print(
        f"  Algorithm R sample mean position: {statistics.mean(algo_r.sample()):,.0f}"
        f" (uniform => ~{STREAM // 2:,})"
    )
    print(
        f"  Algorithm X sample mean position: {statistics.mean(algo_x.sample()):,.0f}"
    )

    # --- the operator query -------------------------------------------------------
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(reservoir_library(tolerance=15))
    query = gs.add_query(RESERVOIR_QUERY.format(window=30, target=N), name="rs")
    config = TraceConfig(duration_seconds=90, rate_scale=0.02)
    gs.run(research_center_feed(config))

    per_window = {}
    for row in query.results:
        per_window.setdefault(row["tb"], 0)
        per_window[row["tb"]] += 1
    print("\nOperator query (paper §6.6): samples per 30s window")
    for window, count in sorted(per_window.items()):
        stats = query.operator.window_stats[window]
        print(
            f"  window {window}: final={count:>4}"
            f"  candidates admitted={stats.tuples_admitted:>5}"
            f"  cleanings={stats.cleaning_phases}"
        )


if __name__ == "__main__":
    main()
