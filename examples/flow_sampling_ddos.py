#!/usr/bin/env python
"""Flow sampling under a DDoS storm (paper §8's closing example).

A spoofed-source attack creates hundreds of thousands of single-packet
flows.  Plain flow aggregation needs one group per flow and exhausts its
memory budget; the integrated flow-aggregation + subset-sum-sampling
table stays bounded at γ·N entries and still estimates total traffic
accurately.

Run:  python examples/flow_sampling_ddos.py
"""

from collections import defaultdict

from repro import TraceConfig, ddos_feed
from repro.algorithms import NaiveFlowAggregator, SampledFlowAggregator
from repro.errors import ReproError

WINDOW = 30
TARGET = 500
MEMORY_LIMIT = 5000  # flow-table entries the "machine" can afford


def main() -> None:
    config = TraceConfig(duration_seconds=150, rate_scale=0.05)
    trace = list(ddos_feed(config, attack_start=60, attack_duration=45))
    by_window = defaultdict(list)
    for record in trace:
        by_window[record["time"] // WINDOW].append(record)

    print(f"{len(trace):,} packets, attack during windows 2-3.\n")

    # --- naive flow aggregation: one group per flow ---------------------------
    print(f"Naive flow aggregation (memory limit {MEMORY_LIMIT:,} flows):")
    for window in sorted(by_window):
        naive = NaiveFlowAggregator(memory_limit=MEMORY_LIMIT)
        try:
            for record in by_window[window]:
                naive.offer(record)
            flows = naive.close_window()
            print(f"  window {window}: OK, {len(flows):,} flows")
        except ReproError as exc:
            print(f"  window {window}: FAILED - {exc}")

    # --- integrated aggregation + sampling ------------------------------------
    print(f"\nIntegrated flow sampling (target {TARGET}, γ=2):")
    sampler = SampledFlowAggregator(target=TARGET, gamma=2.0, relax_factor=10.0)
    for window in sorted(by_window):
        actual = sum(r["len"] for r in by_window[window])
        for record in by_window[window]:
            sampler.offer(record)
        peak = sampler.peak_flows
        flows = sampler.close_window()
        estimate = sampler.estimated_total_bytes(flows)
        elephants = sorted(flows, key=lambda f: f.bytes, reverse=True)[:3]
        print(
            f"  window {window}: sample={len(flows):>4} peak table={peak:>5}"
            f" est bytes={estimate:>12,.0f} actual={actual:>12,} "
            f" ratio={estimate / actual:.3f}"
        )
        for flow in elephants:
            print(
                f"      elephant: {flow.packets:>5} pkts, {flow.bytes:>9,} bytes"
            )
        sampler.peak_flows = 0

    print(
        "\nThe naive table needs one entry per spoofed flow and dies in the"
        " attack windows; the integrated table never exceeds γ·N ="
        f" {int(2 * TARGET)} entries."
    )


if __name__ == "__main__":
    main()
