#!/usr/bin/env python
"""Prototype a *new* sampling algorithm inside the operator — the pitch.

The paper's central argument (§1): hard-coding each sampling algorithm
into the DSMS kernel "is cumbersome and does not promote
experimentation"; with the generic sampling operator, "the functions
which support the streaming algorithm ... can be written by the
algorithmic expert, following a simple API."

This example is that pitch, executed: *sticky sampling* (Manku–Motwani's
probabilistic frequency sketch — not one of the paper's four showcased
algorithms) is bound into the operator right here, in ~40 lines of SFUN
definitions, and compared against the standalone implementation.

Run:  python examples/prototype_new_algorithm.py
"""

import random
from collections import Counter

from repro import Gigascope, TCP_SCHEMA, TraceConfig, research_center_feed
from repro.dsms.stateful import StatefulLibrary, StatefulState
from repro.algorithms import StickySampling
from repro.dsms.functions import _ip_str as ip_str

SUPPORT = 0.03
EPSILON = 0.006
WINDOW = 60


def sticky_library() -> StatefulLibrary:
    """Sticky sampling as an SFUN pack: written like §6.2's API."""
    import math

    library = StatefulLibrary()
    t = int(math.ceil((1.0 / EPSILON) * math.log(1.0 / (SUPPORT * 0.01))))

    @library.state("sticky_state")
    class StickyState(StatefulState):
        def __init__(self):
            self.count = 0
            self.rate = 1
            self.members = set()  # elements currently held ("sticky")
            self.rng = random.Random(0x571C)

    @library.sfun("sticky_admit", state="sticky_state")
    def sticky_admit(state, element):
        # WHERE: held elements always update their counts (the "hold");
        # new elements enter with probability 1/rate (the "sample").
        state.count += 1
        if element in state.members:
            return True
        if state.rate == 1 or state.rng.random() < 1.0 / state.rate:
            state.members.add(element)
            return True
        return False

    @library.sfun("sticky_trigger", state="sticky_state")
    def sticky_trigger(state):
        # CLEANING WHEN: the epoch boundary (2*t*rate arrivals) passed.
        if state.count > 2 * t * state.rate:
            state.rate *= 2
            return True
        return False

    @library.sfun("sticky_reflip", state="sticky_state")
    def sticky_reflip(state, element, count):
        # CLEANING BY: Manku-Motwani re-flip — diminish the count by a
        # geometric number of failed tosses, evict at zero.  The group's
        # aggregate cannot be mutated from here, so eviction happens with
        # the geometric tail probability P(count tails) = 2^-count;
        # survivors keep full counts (a slight over-estimate that only
        # strengthens the no-false-negative guarantee).
        keep = state.rng.random() >= 0.5 ** count
        if not keep:
            state.members.discard(element)
        return keep

    return library


STICKY_QUERY = f"""
SELECT tb, srcIP, count(*)
FROM TCP
WHERE sticky_admit(srcIP) = TRUE
GROUP BY time/{WINDOW} as tb, srcIP
CLEANING WHEN sticky_trigger() = TRUE
CLEANING BY sticky_reflip(srcIP, count(*)) = TRUE
"""


def main() -> None:
    config = TraceConfig(duration_seconds=60, rate_scale=0.05, seed=41)
    trace = list(research_center_feed(config))
    truth = Counter(r["srcIP"] for r in trace)
    n = len(trace)

    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(sticky_library())
    print("Prototyped query:")
    print(STICKY_QUERY)
    handle = gs.add_query(STICKY_QUERY, name="sticky")
    gs.run(iter(trace))

    reported = {
        row["srcIP"]: row[2]
        for row in handle.results
        if row[2] >= (SUPPORT - EPSILON) * n
    }
    print(f"Operator-hosted sticky sampling: {len(reported)} heavy sources")
    for src, estimate in sorted(reported.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {ip_str(src):>15}  est={estimate:<6} true={truth[src]}")

    missed = [
        src for src, count in truth.items()
        if count >= SUPPORT * n and src not in reported
    ]
    print(f"True heavy sources missed: {len(missed)} (guarantee: 0, whp)")

    sketch = StickySampling(support=SUPPORT, epsilon=EPSILON)
    sketch.extend(r["srcIP"] for r in trace)
    print(
        f"\nStandalone StickySampling agrees: {len(sketch.query())} heavy"
        f" sources, {sketch.entry_count} entries"
        f" (expected-space bound {sketch.expected_space():.0f})"
    )


if __name__ == "__main__":
    main()
