#!/usr/bin/env python
"""Heavy hitters: the top traffic sources per minute, two ways.

1. Inside the DSMS, with the paper's §6.6 heavy-hitters query: the
   Manku–Motwani pruning rule expressed as a CLEANING clause of the
   generic sampling operator.
2. Standalone, with the exact LossyCounting class, to cross-check both
   the survivors and the ε-guarantees.

Run:  python examples/heavy_hitters_report.py
"""

from collections import Counter, defaultdict

from repro import Gigascope, TCP_SCHEMA, TraceConfig, research_center_feed
from repro.algorithms import HEAVY_HITTERS_QUERY, LossyCounting, heavy_hitters_library
from repro.dsms.functions import _ip_str as ip_str

WINDOW = 60
BUCKET = 100  # w = ceil(1/epsilon)  ->  epsilon = 1%


def main() -> None:
    config = TraceConfig(duration_seconds=120, rate_scale=0.02)
    trace = list(research_center_feed(config))

    # --- operator-hosted: the paper's query -----------------------------------
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(heavy_hitters_library(bucket_width=BUCKET))
    query = gs.add_query(
        HEAVY_HITTERS_QUERY.format(window=WINDOW, bucket=BUCKET), name="hh"
    )
    gs.run(iter(trace))

    per_window = defaultdict(list)
    for row in query.results:
        per_window[row["tb"]].append((row[3], row["srcIP"], row[2]))

    print(f"Top sources per {WINDOW}s window (operator query, ε=1/{BUCKET}):")
    for window in sorted(per_window):
        top = sorted(per_window[window], reverse=True)[:5]
        print(f"  window {window}:")
        for packets, src, total_bytes in top:
            print(
                f"    {ip_str(src):>15}  packets≈{packets:<6} bytes≈{total_bytes:,}"
            )

    # --- standalone cross-check ----------------------------------------------
    window0 = [r for r in trace if r["time"] // WINDOW == 0]
    lossy = LossyCounting(epsilon=1.0 / BUCKET)
    lossy.extend(r["srcIP"] for r in window0)
    truth = Counter(r["srcIP"] for r in window0)

    support = 0.02
    hitters = lossy.query(support)
    print(
        f"\nStandalone LossyCounting, window 0, support {support:.0%}:"
        f" {len(hitters)} hitters, {lossy.entry_count} entries tracked"
        f" (space bound {lossy.space_bound():.0f})"
    )
    for hitter in hitters[:5]:
        true_count = truth[hitter.element]
        print(
            f"    {ip_str(hitter.element):>15}  est={hitter.estimated_frequency:<6}"
            f" true={true_count:<6} undercount={true_count - hitter.estimated_frequency}"
        )
    # The no-false-negative guarantee: every source above support*N shows up.
    n = len(window0)
    missing = [
        src for src, count in truth.items()
        if count >= support * n
        and src not in {h.element for h in hitters}
    ]
    print(f"    sources above support missed by the sketch: {len(missing)} (must be 0)")


if __name__ == "__main__":
    main()
