#!/usr/bin/env python
"""Network traffic monitoring: relaxed vs non-relaxed subset-sum sampling.

Recreates the paper's §7.1 accuracy study in miniature: an exact
aggregation query and two dynamic subset-sum sampling queries (relaxed
f=10 and non-relaxed) run over the same bursty feed; the report shows how
the non-relaxed variant under-samples and under-estimates after sharp
load drops while the relaxed variant tracks the true sums.

Run:  python examples/network_monitoring.py
"""

from repro.bench import figures


def main() -> None:
    result = figures.figure2(target=100, duration_seconds=200, rate_scale=0.01)

    print("Accuracy of summation (paper Fig 2):")
    print(result.to_text())

    print("\nSamples per period (paper Fig 3):")
    print(result.samples_to_text())

    print("\nCleaning phases per period (paper Fig 4):")
    print(result.cleanings_to_text())

    relaxed = result.estimate_ratio(result.relaxed)
    nonrelaxed = result.estimate_ratio(result.nonrelaxed)
    windows = result.windows[1:]  # skip the cold-start window
    mean_rel = sum(abs(1 - relaxed[w]) for w in windows) / len(windows)
    mean_non = sum(abs(1 - nonrelaxed[w]) for w in windows) / len(windows)
    print(
        f"\nMean absolute estimation error after warm-up:"
        f" relaxed {100 * mean_rel:.1f}%,"
        f" non-relaxed {100 * mean_non:.1f}%"
    )


if __name__ == "__main__":
    main()
