"""Paper Fig 3: samples per period.

Claim reproduced: the relaxed algorithm occasionally over-samples
(admissions above the target, trimmed by cleaning); the non-relaxed
algorithm frequently under-samples.
"""

import os

from repro.bench import figures
from benchmarks._emit import record_bench
from benchmarks.conftest import run_once

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_figures.json")


def test_fig3_samples_per_period(benchmark):
    result = run_once(
        benchmark,
        figures.figure3,
        target=200,
        duration_seconds=240,
        rate_scale=0.02,
    )
    print("\nFigure 3 — samples per period:")
    print(result.samples_to_text())

    windows = result.windows[1:]
    target = result.target
    relaxed_over = [
        w for w in windows if result.relaxed.admitted.get(w, 0) > target
    ]
    nonrelaxed_under = [
        w for w in windows if result.nonrelaxed.admitted.get(w, 0) < target
    ]
    benchmark.extra_info["relaxed_oversampled_windows"] = len(relaxed_over)
    benchmark.extra_info["nonrelaxed_undersampled_windows"] = len(nonrelaxed_under)
    record_bench(OUT_PATH, "fig3_samples_per_period", {
        "target": target,
        "windows": len(windows),
        "relaxed_oversampled_windows": len(relaxed_over),
        "nonrelaxed_undersampled_windows": len(nonrelaxed_under),
    })

    assert len(relaxed_over) >= 0.8 * len(windows)
    assert len(nonrelaxed_under) >= 0.2 * len(windows)
    # Final (post-cleaning) samples never exceed the target.
    assert all(v <= target for v in result.relaxed.outputs.values())
