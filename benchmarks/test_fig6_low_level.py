"""Paper Fig 6: effect of the low-level query type.

Claims reproduced: replacing the pass-through low-level selection with a
basic-subset-sum prefilter (threshold 1/10th of the dynamic level) drops
the low-level cost from ~60% toward ~4% and significantly lowers the
dynamic sampler's own CPU, enabling "a 1% subset-sum sample on a high
speed data stream using less than 6% of a CPU" (paper §8).
"""

import os

from repro.bench import figures
from benchmarks._emit import record_bench
from benchmarks.conftest import run_once

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_figures.json")


def test_fig6_low_level_query_type(benchmark):
    result = run_once(
        benchmark,
        figures.figure6,
        targets=(100, 1000),
        duration_seconds=2,
        window_seconds=1,
    )
    print("\nFigure 6 — effect of low-level query type (cost model):")
    print(result.to_text())

    benchmark.extra_info["selection_low_cpu"] = round(result.selection_low_cpu, 1)
    for target in result.targets:
        benchmark.extra_info[f"prefilter_low_{target}"] = round(
            result.prefilter_low_cpu[target], 2
        )
        assert result.prefilter_fed[target] < result.selection_fed[target]
        assert result.prefilter_low_cpu[target] < result.selection_low_cpu / 3

    assert result.selection_low_cpu > 50.0
    # The paper's headline: ~1% sample collected for < 6% of a CPU total.
    total_100 = result.prefilter_fed[100] + result.prefilter_low_cpu[100]
    assert total_100 < 12.0
    record_bench(OUT_PATH, "fig6_low_level_query_type", {
        "selection_low_cpu": round(result.selection_low_cpu, 1),
        "prefilter_total_cpu_at_100": round(total_100, 2),
        **{
            str(t): {
                "selection_fed_cpu": round(result.selection_fed[t], 2),
                "prefilter_fed_cpu": round(result.prefilter_fed[t], 2),
                "prefilter_low_cpu": round(result.prefilter_low_cpu[t], 2),
            }
            for t in result.targets
        },
    })
