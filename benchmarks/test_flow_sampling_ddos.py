"""Paper §8: integrated flow aggregation + sampling under DDoS.

Claims reproduced: naive per-flow aggregation needs a group per flow and
exhausts memory during a spoofed-source storm; the integrated
flow-sampling table stays bounded at γ·N entries while keeping total-byte
estimates accurate and retaining the elephant flows ("small flows can be
quickly sampled and purged from the group table").
"""

from collections import defaultdict

import pytest

from repro.errors import ReproError
from repro.streams.traces import TraceConfig, ddos_feed
from repro.algorithms.flow_sampling import (
    NaiveFlowAggregator,
    SampledFlowAggregator,
)
from repro.bench.reporting import format_table
from benchmarks.conftest import run_once

WINDOW = 30
TARGET = 400
MEMORY_LIMIT = 4000


def _experiment():
    config = TraceConfig(duration_seconds=120, rate_scale=0.05, seed=77)
    trace = list(ddos_feed(config, attack_start=30, attack_duration=60))
    by_window = defaultdict(list)
    for record in trace:
        by_window[record["time"] // WINDOW].append(record)

    rows = []
    sampler = SampledFlowAggregator(target=TARGET, gamma=2.0, relax_factor=10.0)
    for window in sorted(by_window):
        records = by_window[window]
        actual = sum(r["len"] for r in records)
        distinct = len({(r["srcIP"], r["destIP"], r["srcPort"],
                         r["destPort"], r["protocol"]) for r in records})

        naive = NaiveFlowAggregator(memory_limit=MEMORY_LIMIT)
        naive_outcome = "OK"
        try:
            for record in records:
                naive.offer(record)
            naive.close_window()
        except ReproError:
            naive_outcome = "EXHAUSTED"

        for record in records:
            sampler.offer(record)
        peak = sampler.peak_flows
        sampler.peak_flows = 0
        flows = sampler.close_window()
        estimate = sampler.estimated_total_bytes(flows)
        rows.append(
            (window, distinct, naive_outcome, peak, len(flows),
             estimate / actual)
        )
    return rows


def test_flow_sampling_under_ddos(benchmark):
    rows = run_once(benchmark, _experiment)
    print("\n§8 — flow sampling under a DDoS storm:")
    print(
        format_table(
            ["window", "true flows", f"naive({MEMORY_LIMIT})",
             "sampled peak", "final sample", "est/actual"],
            rows,
        )
    )

    attack_rows = [row for row in rows if row[2] == "EXHAUSTED"]
    calm_rows = [row for row in rows if row[2] == "OK"]
    benchmark.extra_info["exhausted_windows"] = len(attack_rows)

    # The naive aggregator dies in the attack windows (many true flows)...
    assert attack_rows, "the storm must exhaust the naive flow table"
    assert calm_rows, "calm windows must be fine for the naive table"
    # ...while the integrated table never exceeds gamma*N + 1...
    assert all(row[3] <= 2 * TARGET + 1 for row in rows)
    # ...and its byte estimates stay accurate everywhere.
    assert all(0.85 <= row[5] <= 1.15 for row in rows)
