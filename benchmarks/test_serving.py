"""Standing-query serving: shared prefilters vs sequential solo runs.

The serving tentpole's headline claim (docs/SERVING.md): when many
standing queries share a selection signature, the ``StandingQueryEngine``
scans each source batch **once per signature group** — the group leader
runs the low-level prefilter and every follower replays the leader's
captured batch as metric/cost deltas plus an inject of the survivors —
instead of once per query.

The gated number in ``BENCH_serving.json`` (shared emitter,
``benchmarks/_emit.py``): 64 standing selections (8 distinct WHERE
signatures x 8 replicas each) served concurrently must run >= 3x faster
than the same 64 queries executed sequentially on private instances.
The replays are not a shortcut — a one-shot equivalence pass asserts
every served query's rows, comparable metrics, and cost ledger are
byte-identical to its solo oracle (the full-strength version lives in
``tests/serving/test_equivalence.py``).

``REPRO_MIN_SERVING_SPEEDUP`` overrides the gate floor (CI exports 3).
"""

import os
import sys

import pytest

from benchmarks._emit import ROUNDS, best_of, record_bench
from repro.serving.server import StandingQueryEngine, drive
from repro.streams.traces import TraceConfig, research_center_feed

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from tests.serving.conftest import instance_state, make_instance  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serving.json")

CUTS = list(range(200, 1700, 200))  # 8 distinct selection signatures
REPLICAS = 8
TEXTS = [
    f"SELECT time, srcIP, destIP, len FROM TCP WHERE len > {cut}"
    for cut in CUTS
]
QUERIES = TEXTS * REPLICAS
BATCH = 512

#: CI floor for the shared-serving speedup (the acceptance criterion).
MIN_SERVING_SPEEDUP = float(os.environ.get("REPRO_MIN_SERVING_SPEEDUP", "3"))


@pytest.fixture(scope="module")
def records():
    return list(
        research_center_feed(
            TraceConfig(duration_seconds=30, rate_scale=0.02, seed=7)
        )
    )


def solo(text, records):
    gs = make_instance()
    gs.add_query(text, name="q")
    gs.start()
    for start in range(0, len(records), BATCH):
        gs.feed(records[start : start + BATCH])
    gs.finish()
    return gs


def serve(records):
    engine = StandingQueryEngine(make_instance)
    for text in QUERIES:
        engine.register(text, name="q")
    drive(engine, records, batch_size=BATCH)
    return engine


def test_shared_serving_vs_sequential(records):
    """The gated claim: shared-prefilter serving >= 3x sequential."""

    def sequential():
        for text in QUERIES:
            solo(text, records)

    def served():
        serve(records)

    sequential_seconds = best_of(sequential)
    served_seconds = best_of(served)
    speedup = sequential_seconds / served_seconds

    # One instrumented run for sharing accounting + byte-identity: every
    # served query must match its solo oracle exactly, replays included.
    engine = serve(records)
    groups = engine.report()["shared_groups"]
    assert len(groups) == len(CUTS)
    assert all(len(g["members"]) == REPLICAS for g in groups)
    oracles = {text: instance_state(solo(text, records), "q") for text in TEXTS}
    for sq in engine.queries():
        assert instance_state(sq.instance, sq.name) == oracles[sq.text], (
            f"{sq.qid} diverged from its solo oracle"
        )
    replays = engine.metrics.value("serving_shared_replays_total")
    batches = -(-len(records) // BATCH)
    assert replays == (len(QUERIES) - len(CUTS)) * batches

    record_bench(OUT_PATH, "serving_prefilter_sharing", {
        "queries": len(QUERIES),
        "signatures": len(CUTS),
        "replicas": REPLICAS,
        "records": len(records),
        "batch_size": BATCH,
        "rounds": ROUNDS,
        "sequential_seconds": round(sequential_seconds, 4),
        "served_seconds": round(served_seconds, 4),
        "sequential_records_per_second": round(
            len(records) / sequential_seconds
        ),
        "served_records_per_second": round(len(records) / served_seconds),
        "speedup": round(speedup, 2),
        "ci_min_speedup": 3.0,
        "shared_replays": int(replays),
        "byte_identical": True,
    })
    assert speedup >= MIN_SERVING_SPEEDUP, (
        f"served run only {speedup:.2f}x sequential ({sequential_seconds:.3f}s"
        f" vs {served_seconds:.3f}s)"
    )
