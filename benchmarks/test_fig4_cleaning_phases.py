"""Paper Fig 4: cleaning phases per period.

Claim reproduced: after warm-up the relaxed algorithm runs a small,
stable number of cleaning phases per window (paper: ~4) and the
non-relaxed algorithm runs fewer (paper: ~1).
"""

import os

from repro.bench import figures
from benchmarks._emit import record_bench
from benchmarks.conftest import run_once

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_figures.json")


def test_fig4_cleaning_phases(benchmark):
    result = run_once(
        benchmark,
        figures.figure4,
        target=200,
        duration_seconds=240,
        rate_scale=0.02,
    )
    print("\nFigure 4 — cleaning phases per period:")
    print(result.cleanings_to_text())

    windows = result.windows[1:]
    relaxed_mean = sum(
        result.relaxed.cleanings.get(w, 0) for w in windows
    ) / len(windows)
    nonrelaxed_mean = sum(
        result.nonrelaxed.cleanings.get(w, 0) for w in windows
    ) / len(windows)
    benchmark.extra_info["relaxed_cleanings_per_window"] = round(relaxed_mean, 2)
    benchmark.extra_info["nonrelaxed_cleanings_per_window"] = round(nonrelaxed_mean, 2)
    record_bench(OUT_PATH, "fig4_cleaning_phases", {
        "target": result.target,
        "windows": len(windows),
        "relaxed_cleanings_per_window": round(relaxed_mean, 2),
        "nonrelaxed_cleanings_per_window": round(nonrelaxed_mean, 2),
    })

    assert relaxed_mean > nonrelaxed_mean
    assert 1.0 <= relaxed_mean <= 8.0
    assert nonrelaxed_mean <= 2.0
