"""Paper §7.2 in-text: "We found little dependence of CPU load on γ."

Increasing γ makes cleaning rarer but each pass costlier; the two effects
cancel under the cost model just as they did on the authors' testbed.
"""

from repro.bench import figures
from benchmarks.conftest import run_once


def test_gamma_sensitivity(benchmark):
    result = run_once(
        benchmark,
        figures.gamma_sweep,
        gammas=(1.5, 2.0, 4.0, 8.0),
        target=1000,
        duration_seconds=2,
        window_seconds=1,
    )
    print("\n§7.2 — cleaning-trigger (γ) sensitivity:")
    print(result.to_text())

    cpus = [row[1] for row in result.rows]
    cleanings = [row[2] for row in result.rows]
    benchmark.extra_info["cpu_spread"] = round(max(cpus) - min(cpus), 3)

    assert max(cpus) - min(cpus) < 1.5, "CPU must be nearly flat in gamma"
    assert cleanings[0] >= cleanings[-1], "larger gamma, fewer cleanings"
