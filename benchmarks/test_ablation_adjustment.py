"""Ablation: cleaning-phase re-threshold rule (DESIGN.md §4).

"solve" finds the threshold that yields exactly N expected survivors —
the paper's stated goal; "aggressive" is the paper's closed-form rule,
which overshoots when the big-sample count approaches the target (its
denominator M−B vanishes) because MTU-capped packet sizes violate its
"big samples stay big" assumption.
"""

from repro.bench import figures
from benchmarks.conftest import run_once


def test_ablation_adjustment_rule(benchmark):
    result = run_once(
        benchmark,
        figures.ablation_adjustment,
        target=200,
        duration_seconds=240,
        rate_scale=0.02,
    )
    print("\nAblation — re-threshold rule (solve vs aggressive):")
    print(result.to_text())

    errors = {row[0]: row[1] for row in result.rows}
    short_windows = {row[0]: row[2] for row in result.rows}
    benchmark.extra_info["err_solve"] = round(errors["solve"], 4)
    benchmark.extra_info["err_aggressive"] = round(errors["aggressive"], 4)

    assert errors["solve"] <= errors["aggressive"] + 0.02
    # The aggressive rule's overshoot shows up as windows that end short
    # of the target sample size at least as often as the exact solve.
    assert short_windows["aggressive"] >= short_windows["solve"]
