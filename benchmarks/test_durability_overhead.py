"""Overhead of the hardened ingest edge (docs/RESILIENCE.md).

Measures the same serial sampling query three ways:

* **bare** — records fed straight into ``Gigascope.run``;
* **resilient** — records delivered through ``ResilientSource`` with a
  read-timeout watchdog and admission validation into a quarantine;
* **durable** — run under ``DurableRunner`` with the fsync'd
  write-ahead result journal.

The design target is < 10% throughput cost for each hardening layer
over bare ingest; the hard gate here is deliberately loose (fsync cost
varies wildly across CI filesystems) — the measured numbers land in
``BENCH_durability.json`` at the repo root for trend tracking.
"""

import json
import os
import time

import pytest

from repro.dsms.durability import DurableRunner
from repro.dsms.runtime import Gigascope
from repro.streams.schema import TCP_SCHEMA
from repro.streams.sources import QuarantineStream, ResilientSource, RetryPolicy, replayable
from repro.streams.traces import TraceConfig, research_center_feed
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

ROUNDS = 3
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_durability.json")


@pytest.fixture(scope="module")
def packets():
    # Dense enough that each 5s window holds thousands of records: the
    # journal commits per window, so records-per-window sets how far
    # the fixed commit cost (checkpoint pickle + fsync) amortises.
    config = TraceConfig(duration_seconds=30, rate_scale=0.05, seed=11)
    return list(research_center_feed(config))


def build():
    gs = Gigascope()
    gs.register_stream(TCP_SCHEMA)
    gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
    gs.add_query(SUBSET_SUM_QUERY.format(window=5, target=200), name="q")
    return gs


def best_of(fn):
    elapsed = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)


def test_hardening_overhead(benchmark, packets, tmp_path):
    def run_bare():
        gs = build()
        return gs.run(iter(packets), batch_size=1024)

    def run_resilient():
        gs = build()
        quarantine = QuarantineStream()
        src = ResilientSource(
            replayable(packets),
            RetryPolicy(read_timeout=5.0),
            schema=packets[0].schema,
            quarantine=quarantine,
            name="bench",
        )
        return gs.run(iter(src))

    journal_counter = [0]

    def run_durable():
        journal_counter[0] += 1
        gs = build()
        journal = str(tmp_path / f"bench-{journal_counter[0]}.journal")
        runner = DurableRunner(gs, journal, batch_size=1024, commit_interval=8)
        return runner.run(iter(packets))

    # All three variants must process every record.
    assert run_bare() == len(packets)
    assert run_resilient() == len(packets)
    assert run_durable() == len(packets)

    bare = best_of(run_bare)
    resilient = best_of(run_resilient)
    durable = best_of(run_durable)
    result = {
        "records": len(packets),
        "rounds": ROUNDS,
        "bare_seconds": round(bare, 4),
        "resilient_seconds": round(resilient, 4),
        "durable_seconds": round(durable, 4),
        "resilient_overhead_pct": round(100.0 * (resilient / bare - 1.0), 1),
        "durable_overhead_pct": round(100.0 * (durable / bare - 1.0), 1),
        "target_overhead_pct": 10.0,
        "bare_records_per_second": round(len(packets) / bare),
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("\nBENCH_durability:", json.dumps(result, indent=2, sort_keys=True))

    # Loose gates: the target is 10%, the gate only catches pathology
    # (e.g. an accidental per-record fsync or per-record reconnect).
    assert resilient < bare * 2.0, result
    assert durable < bare * 2.0, result

    # pytest-benchmark regression signal on the hardened path.
    benchmark.pedantic(run_durable, rounds=1, iterations=1)
