"""Paper Fig 5: CPU usage for sampling (cost model, steady 100 kpps feed).

Claims reproduced: the sampling operator costs only a few percentage
points more CPU than a basic-subset-sum selection; the relaxed variant
costs at most ~2 points over non-relaxed; the low-level selection feeding
the sampler costs ~60% of a CPU (per-tuple copies).
"""

from repro.bench import figures
from benchmarks.conftest import run_once


def test_fig5_cpu_usage(benchmark):
    result = run_once(
        benchmark,
        figures.figure5,
        targets=(100, 1000, 10000),
        duration_seconds=2,
        window_seconds=1,
    )
    print("\nFigure 5 — CPU usage for sampling (cost model):")
    print(result.to_text())

    for target in result.targets:
        benchmark.extra_info[f"relaxed_{target}"] = round(result.relaxed[target], 2)
        benchmark.extra_info[f"basic_{target}"] = round(result.basic[target], 2)

        extra = result.relaxed[target] - result.basic[target]
        assert 0.0 < extra < 6.0, "sampling operator overhead must stay small"
        diff = result.relaxed[target] - result.nonrelaxed[target]
        assert diff <= 2.0, "relaxation costs at most ~2% CPU (paper §7.2)"
        assert 50.0 < result.low_level[target] < 70.0

    # CPU grows (weakly) with the sample target, as in the figure.
    assert result.relaxed[10000] >= result.relaxed[100]
