"""Paper Fig 5: CPU usage for sampling (cost model, steady 100 kpps feed).

Claims reproduced: the sampling operator costs only a few percentage
points more CPU than a basic-subset-sum selection; the relaxed variant
costs at most ~2 points over non-relaxed; the low-level selection feeding
the sampler costs ~60% of a CPU (per-tuple copies).
"""

import os

from repro.bench import figures
from benchmarks._emit import record_bench
from benchmarks.conftest import run_once

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_figures.json")


def test_fig5_cpu_usage(benchmark):
    result = run_once(
        benchmark,
        figures.figure5,
        targets=(100, 1000, 10000),
        duration_seconds=2,
        window_seconds=1,
    )
    print("\nFigure 5 — CPU usage for sampling (cost model):")
    print(result.to_text())

    for target in result.targets:
        benchmark.extra_info[f"relaxed_{target}"] = round(result.relaxed[target], 2)
        benchmark.extra_info[f"basic_{target}"] = round(result.basic[target], 2)

        extra = result.relaxed[target] - result.basic[target]
        assert 0.0 < extra < 6.0, "sampling operator overhead must stay small"
        diff = result.relaxed[target] - result.nonrelaxed[target]
        assert diff <= 2.0, "relaxation costs at most ~2% CPU (paper §7.2)"
        assert 50.0 < result.low_level[target] < 70.0

    # CPU grows (weakly) with the sample target, as in the figure.
    assert result.relaxed[10000] >= result.relaxed[100]
    record_bench(OUT_PATH, "fig5_cpu_usage", {
        str(t): {
            "relaxed_cpu": round(result.relaxed[t], 2),
            "nonrelaxed_cpu": round(result.nonrelaxed[t], 2),
            "basic_cpu": round(result.basic[t], 2),
            "low_level_cpu": round(result.low_level[t], 2),
        }
        for t in result.targets
    })
