"""Benchmark configuration.

Every benchmark regenerates one of the paper's figures (or an ablation).
The figure computations are deterministic, so a single round is
meaningful; the interesting output is the printed series (run with
``-s`` to see the tables) and the shape assertions, with wall-clock time
tracked by pytest-benchmark as a regression signal.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic experiment with one warm round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
