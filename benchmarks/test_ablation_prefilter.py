"""Ablation: low-level prefilter threshold fraction (DESIGN.md §7).

The paper fixes the prefilter at 1/10th of the dynamic threshold.  The
sweep exposes the trade: a higher fraction cuts low-level forwarding
cost further but starves the dynamic sampler; a lower fraction forwards
more (costlier) while adding no accuracy.
"""

from repro.bench import figures
from benchmarks.conftest import run_once


def test_ablation_prefilter_fraction(benchmark):
    result = run_once(
        benchmark,
        figures.ablation_prefilter,
        fractions=(1.0, 0.5, 0.1, 0.02),
        target=1000,
        duration_seconds=2,
        window_seconds=1,
    )
    print("\nAblation — prefilter threshold fraction z_pre/z_dyn:")
    print(result.to_text())

    low_cpu = {row[0]: row[1] for row in result.rows}
    outputs = {row[0]: row[3] for row in result.rows}
    benchmark.extra_info["low_cpu_at_0.1"] = round(low_cpu[0.1], 2)

    # Forwarding cost falls monotonically as the prefilter tightens.
    assert low_cpu[0.02] > low_cpu[0.1] > low_cpu[1.0]
    # The paper's 1/10 setting keeps the sampler near its target.
    assert outputs[0.1] > 0.8 * 1000
    # A prefilter at the dynamic threshold itself starves the sampler's
    # headroom (no over-collection left for the estimator to clean).
    assert outputs[1.0] <= outputs[0.1] + 50
