"""Ablation: the relaxation factor f (DESIGN.md §7).

f=1 is the paper's non-relaxed algorithm; f=10 is its published fix.
The sweep shows the accuracy/cleaning-cost trade: accuracy improves
steeply up to f≈10 and saturates, while cleaning phases keep growing
(each window re-adapts from a lower starting threshold).
"""

from repro.bench import figures
from benchmarks.conftest import run_once


def test_ablation_relax_factor(benchmark):
    result = run_once(
        benchmark,
        figures.ablation_relax_factor,
        factors=(1.0, 2.0, 5.0, 10.0, 30.0),
        target=200,
        duration_seconds=240,
        rate_scale=0.02,
    )
    print("\nAblation — relaxation factor f:")
    print(result.to_text())

    errors = {row[0]: row[1] for row in result.rows}
    cleanings = {row[0]: row[2] for row in result.rows}
    benchmark.extra_info["err_f1"] = round(errors[1.0], 4)
    benchmark.extra_info["err_f10"] = round(errors[10.0], 4)

    assert errors[10.0] < errors[1.0], "the paper's fix must help"
    assert cleanings[30.0] > cleanings[1.0], "relaxation costs cleanings"
    # Saturation: pushing f far beyond the feed's variability gains little.
    assert abs(errors[30.0] - errors[10.0]) < 0.05
