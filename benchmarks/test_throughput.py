"""Real wall-clock throughput of the Python operators.

The paper's line-rate numbers come from compiled C; these benchmarks
measure what this pure-Python reproduction actually sustains, so readers
can relate the cost-model figures to wall-clock reality.  Reported as
records/second via pytest-benchmark's ops/sec, and every benchmark also
lands its measured numbers in ``BENCH_throughput.json`` at the repo root
(one key per benchmark) for trend tracking and the CI throughput gate.

The vectorized benchmarks carry the hard gates for the columnar batch
engine (DESIGN.md §11): the operator-level selection and windowed
aggregation hot paths must beat the tuple path by >= 10x locally (CI
enforces a looser 5x floor for noisy runners via the recorded JSON).
"""

import os
import time

import pytest

from benchmarks._emit import ROUNDS, best_of
from benchmarks._emit import record_bench as _record_bench
from repro.dsms.runtime import Gigascope
from repro.dsms.vectorized import RecordBatch
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, data_center_feed
from repro.algorithms.bindings import (
    BASIC_SUBSET_SUM_QUERY,
    SUBSET_SUM_QUERY,
    basic_subset_sum_library,
    subset_sum_library,
)

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_throughput.json")
BATCH_SIZE = 4096

#: CI floor for the vectorized selection hot path; loose relative to the
#: in-test gates because shared CI runners are noisy.
CI_MIN_SELECTION_SPEEDUP = 5.0

#: Hot-path gate used by the asserts below.  Defaults to the 10x claim;
#: CI exports REPRO_MIN_HOT_PATH_SPEEDUP=5 so a noisy runner can't flake
#: the job (the recorded JSON keeps the honest number either way).
MIN_HOT_PATH_SPEEDUP = float(os.environ.get("REPRO_MIN_HOT_PATH_SPEEDUP", "10"))


def record_bench(name, payload):
    """Merge one benchmark's numbers into BENCH_throughput.json
    (shared emitter: ``benchmarks/_emit.py``)."""
    _record_bench(OUT_PATH, name, payload)


@pytest.fixture(scope="module")
def packets():
    config = TraceConfig(duration_seconds=10, rate_scale=0.01, seed=1)
    return list(data_center_feed(config))


@pytest.fixture(scope="module")
def batches(packets):
    return [
        RecordBatch.from_records(TCP_SCHEMA, packets[i : i + BATCH_SIZE])
        for i in range(0, len(packets), BATCH_SIZE)
    ]


# ---------------------------------------------------------------------------
# End-to-end engine throughput (ring buffers, runtime, sinks included)
# ---------------------------------------------------------------------------


def test_throughput_selection(benchmark, packets):
    def run():
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.add_query("SELECT time, len FROM TCP WHERE len > 200",
                     name="sel", keep_results=False)
        return gs.run(iter(packets))

    processed = benchmark(run)
    assert processed == len(packets)
    seconds = best_of(run)
    record_bench("selection_end_to_end", {
        "records": len(packets),
        "rounds": ROUNDS,
        "seconds": round(seconds, 4),
        "records_per_second": round(len(packets) / seconds),
    })


def test_throughput_basic_subset_sum(benchmark, packets):
    def run():
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(basic_subset_sum_library())
        gs.add_query(BASIC_SUBSET_SUM_QUERY.format(z=50_000),
                     name="basic", keep_results=False)
        return gs.run(iter(packets))

    processed = benchmark(run)
    assert processed == len(packets)
    seconds = best_of(run)
    record_bench("basic_subset_sum_end_to_end", {
        "records": len(packets),
        "rounds": ROUNDS,
        "seconds": round(seconds, 4),
        "records_per_second": round(len(packets) / seconds),
    })


def test_throughput_sampling_operator(benchmark, packets):
    def run():
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.add_query(SUBSET_SUM_QUERY.format(window=2, target=100),
                     name="ss", keep_results=False)
        return gs.run(iter(packets))

    processed = benchmark(run)
    assert processed == len(packets)
    seconds = best_of(run)
    record_bench("sampling_operator_end_to_end", {
        "records": len(packets),
        "rounds": ROUNDS,
        "seconds": round(seconds, 4),
        "records_per_second": round(len(packets) / seconds),
    })


def test_throughput_sharded_vs_serial(benchmark, packets):
    """Sharded-vs-serial wall-clock comparison on one partitionable query.

    Python shards pay interpreter overhead per shard, so the point is not
    a speedup claim but a recorded comparison — plus the hard assertion
    that the sharded runtime's output is identical to the serial one.
    """
    from repro.dsms.sharded import ShardedGigascope, canonical_rows

    text = (
        "SELECT tb, srcIP, sum(len), count(*)"
        " FROM TCP GROUP BY time/2 as tb, srcIP"
    )

    def serial():
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        handle = gs.add_query(text, name="agg")
        gs.run(iter(packets))
        return handle.results

    def sharded():
        sh = ShardedGigascope(shards=2)
        sh.register_stream(TCP_SCHEMA)
        handle = sh.add_query(text, name="agg")
        sh.run(iter(packets))
        return handle.results

    start = time.perf_counter()
    serial_results = serial()
    serial_seconds = time.perf_counter() - start

    sharded_results = benchmark(sharded)

    assert canonical_rows(sharded_results) == canonical_rows(serial_results)
    # benchmark.stats is unset under --benchmark-disable, and a mean of
    # zero (clock granularity on a degenerate run) would divide by zero:
    # fall back to an explicit timing rather than crash the comparison.
    stats = getattr(benchmark, "stats", None)
    sharded_seconds = stats.stats.mean if stats is not None else 0.0
    if not sharded_seconds > 0.0:
        sharded_seconds = best_of(sharded, rounds=1)
    print(
        f"\nserial {serial_seconds:.3f}s vs sharded(2) {sharded_seconds:.3f}s"
        f" ({serial_seconds / sharded_seconds:.2f}x)"
    )
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["sharded_shards"] = 2
    record_bench("sharded_vs_serial", {
        "records": len(packets),
        "serial_seconds": round(serial_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "shards": 2,
        "serial_over_sharded": round(serial_seconds / sharded_seconds, 2),
    })


# ---------------------------------------------------------------------------
# Vectorized engine: operator-level hot paths (the >= 10x claims)
# ---------------------------------------------------------------------------


def _operator_pair(sql):
    """(tuple_operator, vectorized_operator) for one query text."""
    operators = []
    for vectorize in (False, True):
        gs = Gigascope(vectorize=vectorize)
        gs.register_stream(TCP_SCHEMA)
        operators.append(gs.add_query(sql, name="bench").operator)
    return operators


def _hot_path_seconds(sql, packets, batches):
    tup, vec = _operator_pair(sql)
    assert vec.execution_mode == "vectorized", vec.vectorize_fallback

    def run_tuple():
        for record in packets:
            tup.process(record)
        tup.flush()

    def run_vec():
        for batch in batches:
            vec.process_batch(batch)
        vec.flush()

    return best_of(run_tuple), best_of(run_vec), run_vec


def test_throughput_vectorized_selection_hot_path(benchmark, packets, batches):
    """Operator-level selection: the batch engine's headline number."""
    sql = "SELECT time, srcIP, len FROM TCP WHERE len > 200"
    tuple_seconds, vec_seconds, run_vec = _hot_path_seconds(sql, packets, batches)
    speedup = tuple_seconds / vec_seconds
    n = len(packets)
    record_bench("vectorized_selection_hot_path", {
        "records": n,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "tuple_us_per_record": round(tuple_seconds / n * 1e6, 3),
        "vectorized_us_per_record": round(vec_seconds / n * 1e6, 3),
        "speedup": round(speedup, 1),
        "target_speedup": 10.0,
        "ci_min_speedup": CI_MIN_SELECTION_SPEEDUP,
    })
    assert speedup >= MIN_HOT_PATH_SPEEDUP, (tuple_seconds, vec_seconds)
    benchmark.pedantic(run_vec, rounds=1, iterations=1)


def test_throughput_vectorized_aggregation_hot_path(benchmark, packets, batches):
    """Operator-level windowed aggregation (the paper's per-time-bucket
    ``sum(len)`` shape): batched folds plus the columnar window close."""
    sql = "SELECT tb, sum(len), count(*) FROM TCP GROUP BY time/2 AS tb"
    tuple_seconds, vec_seconds, run_vec = _hot_path_seconds(sql, packets, batches)
    speedup = tuple_seconds / vec_seconds
    n = len(packets)
    record_bench("vectorized_aggregation_hot_path", {
        "records": n,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "tuple_us_per_record": round(tuple_seconds / n * 1e6, 3),
        "vectorized_us_per_record": round(vec_seconds / n * 1e6, 3),
        "speedup": round(speedup, 1),
        "target_speedup": 10.0,
    })
    assert speedup >= MIN_HOT_PATH_SPEEDUP, (tuple_seconds, vec_seconds)
    benchmark.pedantic(run_vec, rounds=1, iterations=1)


def test_throughput_vectorized_grouped_aggregation(packets, batches):
    """High-cardinality GROUP BY (a group per handful of rows): the
    per-group work both engines share — aggregate instances, output
    records — bounds the win, so this records the honest number with a
    pathology-only gate rather than the 10x hot-path claim."""
    sql = (
        "SELECT tb, srcIP, sum(len), count(*)"
        " FROM TCP WHERE len > 100 GROUP BY time/2 AS tb, srcIP"
    )
    tuple_seconds, vec_seconds, _ = _hot_path_seconds(sql, packets, batches)
    speedup = tuple_seconds / vec_seconds
    n = len(packets)
    record_bench("vectorized_grouped_aggregation", {
        "records": n,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "tuple_us_per_record": round(tuple_seconds / n * 1e6, 3),
        "vectorized_us_per_record": round(vec_seconds / n * 1e6, 3),
        "speedup": round(speedup, 1),
    })
    assert speedup >= 2.0, (tuple_seconds, vec_seconds)


def test_throughput_vectorized_end_to_end(packets):
    """Whole-engine comparison: ring buffers, runtime batching, and the
    record/batch conversion edges included."""

    def run(vectorize):
        gs = Gigascope(vectorize=vectorize)
        gs.register_stream(TCP_SCHEMA)
        gs.add_query("SELECT time, srcIP, len FROM TCP WHERE len > 200",
                     name="sel", keep_results=False)
        return gs.run(iter(packets))

    assert run(False) == len(packets)
    assert run(True) == len(packets)
    tuple_seconds = best_of(lambda: run(False))
    vec_seconds = best_of(lambda: run(True))
    speedup = tuple_seconds / vec_seconds
    n = len(packets)
    record_bench("vectorized_selection_end_to_end", {
        "records": n,
        "rounds": ROUNDS,
        "tuple_seconds": round(tuple_seconds, 4),
        "vectorized_seconds": round(vec_seconds, 4),
        "tuple_records_per_second": round(n / tuple_seconds),
        "vectorized_records_per_second": round(n / vec_seconds),
        "speedup": round(speedup, 1),
    })
    assert speedup >= 2.0, (tuple_seconds, vec_seconds)
