"""Real wall-clock throughput of the Python operators.

The paper's line-rate numbers come from compiled C; these benchmarks
measure what this pure-Python reproduction actually sustains, so readers
can relate the cost-model figures to wall-clock reality.  Reported as
records/second via pytest-benchmark's ops/sec.
"""

import pytest

from repro.dsms.runtime import Gigascope
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, data_center_feed
from repro.algorithms.bindings import (
    BASIC_SUBSET_SUM_QUERY,
    SUBSET_SUM_QUERY,
    basic_subset_sum_library,
    subset_sum_library,
)


@pytest.fixture(scope="module")
def packets():
    config = TraceConfig(duration_seconds=10, rate_scale=0.01, seed=1)
    return list(data_center_feed(config))


def test_throughput_selection(benchmark, packets):
    def run():
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.add_query("SELECT time, len FROM TCP WHERE len > 200",
                     name="sel", keep_results=False)
        return gs.run(iter(packets))

    processed = benchmark(run)
    assert processed == len(packets)


def test_throughput_basic_subset_sum(benchmark, packets):
    def run():
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(basic_subset_sum_library())
        gs.add_query(BASIC_SUBSET_SUM_QUERY.format(z=50_000),
                     name="basic", keep_results=False)
        return gs.run(iter(packets))

    processed = benchmark(run)
    assert processed == len(packets)


def test_throughput_sampling_operator(benchmark, packets):
    def run():
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        gs.use_stateful_library(subset_sum_library(relax_factor=10.0))
        gs.add_query(SUBSET_SUM_QUERY.format(window=2, target=100),
                     name="ss", keep_results=False)
        return gs.run(iter(packets))

    processed = benchmark(run)
    assert processed == len(packets)


def test_throughput_sharded_vs_serial(benchmark, packets):
    """Sharded-vs-serial wall-clock comparison on one partitionable query.

    Python shards pay interpreter overhead per shard, so the point is not
    a speedup claim but a recorded comparison — plus the hard assertion
    that the sharded runtime's output is identical to the serial one.
    """
    import time

    from repro.dsms.sharded import ShardedGigascope, canonical_rows

    text = (
        "SELECT tb, srcIP, sum(len), count(*)"
        " FROM TCP GROUP BY time/2 as tb, srcIP"
    )

    def serial():
        gs = Gigascope()
        gs.register_stream(TCP_SCHEMA)
        handle = gs.add_query(text, name="agg")
        gs.run(iter(packets))
        return handle.results

    def sharded():
        sh = ShardedGigascope(shards=2)
        sh.register_stream(TCP_SCHEMA)
        handle = sh.add_query(text, name="agg")
        sh.run(iter(packets))
        return handle.results

    start = time.perf_counter()
    serial_results = serial()
    serial_seconds = time.perf_counter() - start

    sharded_results = benchmark(sharded)

    assert canonical_rows(sharded_results) == canonical_rows(serial_results)
    sharded_seconds = benchmark.stats.stats.mean
    print(
        f"\nserial {serial_seconds:.3f}s vs sharded(2) {sharded_seconds:.3f}s"
        f" ({serial_seconds / sharded_seconds:.2f}x)"
    )
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["sharded_shards"] = 2
