"""Shared JSON emitter for the tracked ``BENCH_*.json`` artifacts.

Every benchmark family lands its measured numbers in a flat
``{benchmark_name: payload}`` JSON document at the repo root
(``BENCH_throughput.json``, ``BENCH_rebalance.json``, ...) for trend
tracking and the CI gates (``scripts/check_*_gate.py``).  Rewriting the
whole document on every merge keeps it valid JSON regardless of which
subset of benchmarks ran.
"""

from __future__ import annotations

import json
import os
import time

#: Default best-of rounds for wall-clock measurements.
ROUNDS = 3


def record_bench(out_path: str, name: str, payload: dict) -> None:
    """Merge one benchmark's numbers into the JSON document at *out_path*."""
    data = {}
    if os.path.exists(out_path):
        try:
            with open(out_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[name] = payload
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    label = os.path.basename(out_path).rsplit(".", 1)[0]
    print(f"\n{label}[{name}]:", json.dumps(payload, sort_keys=True))


def best_of(fn, rounds: int = ROUNDS) -> float:
    """Minimum wall-clock seconds over *rounds* runs of ``fn()``."""
    elapsed = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)
