"""Elastic rebalancing under adversarial skew: throughput and honesty.

The paper's DDoS workload concentrates most traffic on one victim key.
Static hash sharding sends all of it to one shard; the elastic
rebalancer pins the hot key, migrates the cold tail's slots away, and —
when one key is simply too hot to migrate away from — degrades
gracefully by deterministically downsampling *only that key's* traffic
with shed-style cost accounting (``RebalancePolicy(curate=True)``).

Two numbers land in ``BENCH_rebalance.json`` (shared emitter,
``benchmarks/_emit.py``):

* ``rebalanced_vs_static_hot_key`` — the CI-gated headline: on an
  80%-hot-key workload the rebalanced+curated run must sustain >= 2x
  the throughput of static hash sharding.  The payload records the
  curated fraction explicitly: the speedup comes from *bounded,
  accounted degradation of one key*, not from free parallelism.
* ``migration_only_exact`` — the honest flip side: with curation off,
  results stay byte-identical to static sharding (and serial), and the
  recorded ratio shows what exactness costs when the hot key cannot be
  split.

``REPRO_MIN_REBALANCE_SPEEDUP`` overrides the gate floor (CI exports 2).
"""

import os

from benchmarks._emit import ROUNDS, best_of, record_bench
from repro.dsms.rebalance import RebalancePolicy
from repro.dsms.sharded import ShardedGigascope, canonical_rows
from repro.streams.schema import TCP_SCHEMA
from repro.streams.traces import TraceConfig, research_center_feed
from repro.testing.faults import hot_key_stream
from repro.algorithms.bindings import SUBSET_SUM_QUERY, subset_sum_library

import pytest

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_rebalance.json")

SS_TEXT = SUBSET_SUM_QUERY.format(window=5, target=500).replace(
    "GROUP BY time/5 as tb, srcIP, destIP, uts",
    "GROUP BY time/5 as tb, srcIP, destIP, uts SUPERGROUP BY tb, srcIP",
)
AGG_TEXT = "SELECT tb, srcIP, sum(len), count(*) FROM TCP GROUP BY time/5 as tb, srcIP"

HOT_IP = 0x0A0A0A0A
HOT_FRACTION = 0.8
CURATE_KEEP = 0.0625  # keep 1 in 16 of the hot key's records
SHARDS = 4
BATCH = 256

#: CI floor for the skewed-workload speedup (the acceptance criterion).
MIN_REBALANCE_SPEEDUP = float(os.environ.get("REPRO_MIN_REBALANCE_SPEEDUP", "2"))


@pytest.fixture(scope="module")
def skewed_feed():
    recs = list(
        research_center_feed(TraceConfig(duration_seconds=60, rate_scale=0.02, seed=7))
    )
    return hot_key_stream(recs, "srcIP", HOT_IP, fraction=HOT_FRACTION)


def build(rebalance, keep_results=False):
    sh = ShardedGigascope(shards=SHARDS, rebalance=rebalance)
    sh.register_stream(TCP_SCHEMA)
    sh.use_stateful_library(subset_sum_library(relax_factor=10.0))
    sh.add_query(SS_TEXT, name="ss", keep_results=keep_results)
    sh.add_query(AGG_TEXT, name="agg", keep_results=keep_results)
    return sh


def curated_policy():
    return RebalancePolicy(
        check_interval=2,
        min_records=256,
        max_shards=SHARDS,
        curate=True,
        curate_threshold=0.5,
        curate_keep=CURATE_KEEP,
    )


def test_rebalanced_vs_static_hot_key(skewed_feed):
    """The gated claim: rebalanced+curated >= 2x static hash sharding."""

    def static():
        build(None).run(iter(skewed_feed), batch_size=BATCH)

    def rebalanced():
        build(curated_policy()).run(iter(skewed_feed), batch_size=BATCH)

    static_seconds = best_of(static)
    rebalanced_seconds = best_of(rebalanced)
    speedup = static_seconds / rebalanced_seconds

    # One instrumented run for the degradation accounting.
    sh = build(curated_policy())
    sh.run(iter(skewed_feed), batch_size=BATCH)
    report = sh.run_report()["rebalance"]
    n = len(skewed_feed)
    curated = report["curated_records"]
    assert report["curated_keys"] >= 1, "the hot key was never curated"
    # Every dropped record is accounted — nothing disappears silently.
    assert curated == int(
        sh.metrics.value("rebalance_curated_total", stream="TCP")
    )
    record_bench(OUT_PATH, "rebalanced_vs_static_hot_key", {
        "records": n,
        "hot_fraction": HOT_FRACTION,
        "shards": SHARDS,
        "rounds": ROUNDS,
        "static_seconds": round(static_seconds, 4),
        "rebalanced_seconds": round(rebalanced_seconds, 4),
        "static_records_per_second": round(n / static_seconds),
        "rebalanced_records_per_second": round(n / rebalanced_seconds),
        "speedup": round(speedup, 2),
        "ci_min_speedup": 2.0,
        # Honest labeling: the win comes from bounded hot-key curation.
        "curate_keep": CURATE_KEEP,
        "curated_records": curated,
        "curated_fraction": round(curated / n, 3),
        "migrated_groups": report["migrated_groups"],
        "pinned_keys": report["pinned_keys"],
    })
    assert speedup >= MIN_REBALANCE_SPEEDUP, (
        f"rebalanced run only {speedup:.2f}x static ({static_seconds:.3f}s"
        f" vs {rebalanced_seconds:.3f}s)"
    )


def test_migration_only_exact(skewed_feed):
    """Curation off: migration alone keeps results byte-identical."""
    static = build(None, keep_results=True)
    static_seconds = best_of(
        lambda: static.run(iter(skewed_feed), batch_size=BATCH), rounds=1
    )

    policy = RebalancePolicy(check_interval=2, min_records=256, max_shards=SHARDS)
    rebalanced = build(policy, keep_results=True)
    rebalanced_seconds = best_of(
        lambda: rebalanced.run(iter(skewed_feed), batch_size=BATCH), rounds=1
    )

    for name in ("ss", "agg"):
        assert canonical_rows(rebalanced.query(name).results) == canonical_rows(
            static.query(name).results
        ), f"query {name} diverged under migration-only rebalancing"
    report = rebalanced.run_report()["rebalance"]
    assert report["curated_records"] == 0
    record_bench(OUT_PATH, "migration_only_exact", {
        "records": len(skewed_feed),
        "hot_fraction": HOT_FRACTION,
        "shards": SHARDS,
        "static_seconds": round(static_seconds, 4),
        "rebalanced_seconds": round(rebalanced_seconds, 4),
        "ratio": round(static_seconds / rebalanced_seconds, 2),
        "byte_identical": True,
        "migrated_groups": report["migrated_groups"],
        "plans": report["plans"],
    })
