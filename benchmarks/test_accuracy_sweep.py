"""Paper §7.1 in-text: repeating the accuracy study at 100 / 1,000 /
10,000 samples per period gives "nearly identical results".

We sweep proportionally scaled targets and check the relaxed algorithm's
error is small and roughly flat across them.
"""

from repro.bench import figures
from benchmarks.conftest import run_once


def test_accuracy_sweep_across_targets(benchmark):
    result = run_once(
        benchmark,
        figures.accuracy_sweep,
        targets=(20, 200, 2000),
        duration_seconds=240,
        rate_scale=0.02,
    )
    print("\n§7.1 — accuracy at different samples-per-period targets:")
    print(result.to_text())

    relaxed_errors = {row[0]: row[1] for row in result.rows}
    nonrelaxed_errors = {row[0]: row[2] for row in result.rows}
    for target, err in relaxed_errors.items():
        benchmark.extra_info[f"relaxed_err_{target}"] = round(err, 4)
        assert err < 0.1, f"relaxed error too large at target {target}"
        assert err < nonrelaxed_errors[target] + 0.02

    # "Nearly identical": the relaxed error band stays narrow across
    # two orders of magnitude of sample size.
    errs = list(relaxed_errors.values())
    assert max(errs) - min(errs) < 0.08
