"""Algorithm-engineering bench: estimator variance across samplers.

The paper motivates subset-sum sampling by the variance penalty of
uniform sampling on heavy-tailed measures (§4.4) and argues the operator
exists to make exactly this kind of comparison cheap.  This bench runs
uniform (Bernoulli), systematic (DROP), threshold (subset-sum) and
priority sampling over the same heavy-tailed packet trace at matched
expected sample size and reports each estimator's relative RMSE on the
total-bytes query.
"""

import random

from repro.algorithms.estimators import replicate, subset_sum_variance_gap
from repro.algorithms.priority import PrioritySampler
from repro.algorithms.subset_sum import ThresholdSampler, solve_threshold
from repro.algorithms.uniform import BernoulliSampler, DropSampler
from repro.bench.reporting import format_table
from benchmarks.conftest import run_once


def _weights(n=5000, seed=99):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        u = rng.random()
        if u < 0.5:
            out.append(float(rng.randint(40, 80)))
        elif u < 0.7:
            out.append(float(rng.randint(300, 700)))
        else:
            out.append(float(rng.randint(1300, 1500)))
    # a few elephants (aggregated flows) to create the heavy tail
    for _ in range(10):
        out.append(float(rng.randint(100_000, 500_000)))
    return out


def _compare(sample_size=100, replications=40):
    weights = _weights()
    truth = sum(weights)
    n = len(weights)
    z = solve_threshold(weights, sample_size)

    def bernoulli(seed):
        sampler = BernoulliSampler(sample_size / n, random.Random(seed))
        return sampler.estimate_sum(w for w in weights if sampler.offer())

    def systematic(seed):
        sampler = DropSampler(keep_one_in=n // sample_size, phase=seed % (n // sample_size))
        return sampler.estimate_sum(w for w in weights if sampler.offer())

    def threshold(seed):
        rng = random.Random(seed)
        total = 0.0
        for w in weights:
            if rng.random() < min(1.0, w / z):
                total += max(w, z)
        return total

    def priority(seed):
        sampler = PrioritySampler(k=sample_size, rng=random.Random(seed))
        sampler.extend(weights)
        return sampler.estimate_sum()

    rows = []
    for name, fn in (
        ("uniform (Bernoulli)", bernoulli),
        ("systematic (DROP)", systematic),
        ("threshold (subset-sum)", threshold),
        ("priority", priority),
    ):
        report = replicate(fn, truth, replications)
        rows.append((name, report.relative_bias, report.relative_rmse))
    gap = subset_sum_variance_gap(weights, sample_size)
    return rows, gap


def test_variance_comparison(benchmark):
    rows, gap = run_once(benchmark, _compare)
    print("\nEstimator comparison (total bytes, matched sample size 100):")
    print(format_table(["sampler", "rel. bias", "rel. RMSE"], rows))
    print(f"analytic variance gap (uniform/threshold): {gap:.1f}x")

    rmse = {name: value for name, _bias, value in rows}
    benchmark.extra_info["rmse_uniform"] = round(rmse["uniform (Bernoulli)"], 4)
    benchmark.extra_info["rmse_threshold"] = round(rmse["threshold (subset-sum)"], 4)

    # The paper's motivation in one assertion: weighted samplers dominate.
    assert rmse["threshold (subset-sum)"] < rmse["uniform (Bernoulli)"] / 2
    assert rmse["priority"] < rmse["uniform (Bernoulli)"] / 2
    # All estimators are unbiased, but the high-variance ones have noisy
    # replication means: bound each bias by a few standard errors.
    import math

    replications = 40
    for name, bias, rel_rmse in rows:
        assert abs(bias) < 4 * rel_rmse / math.sqrt(replications) + 0.02, name
    assert gap > 3.0
