"""Paper Fig 2: accuracy of summation (actual vs relaxed vs non-relaxed).

Claim reproduced: the relaxed dynamic subset-sum estimates match the
actual per-window sums closely; the non-relaxed variant under-estimates
on windows following sharp load drops.
"""

import os

from repro.bench import figures
from benchmarks._emit import record_bench
from benchmarks.conftest import run_once

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_figures.json")


def test_fig2_accuracy_of_summation(benchmark):
    result = run_once(
        benchmark,
        figures.figure2,
        target=200,
        duration_seconds=240,
        rate_scale=0.02,
    )
    print("\nFigure 2 — accuracy of summation (1000-sample analogue):")
    print(result.to_text())

    relaxed = result.estimate_ratio(result.relaxed)
    nonrelaxed = result.estimate_ratio(result.nonrelaxed)
    windows = result.windows[1:]
    relaxed_err = sum(abs(1 - relaxed[w]) for w in windows) / len(windows)
    nonrelaxed_err = sum(abs(1 - nonrelaxed[w]) for w in windows) / len(windows)
    benchmark.extra_info["relaxed_mean_abs_err"] = round(relaxed_err, 4)
    benchmark.extra_info["nonrelaxed_mean_abs_err"] = round(nonrelaxed_err, 4)
    record_bench(OUT_PATH, "fig2_accuracy_of_summation", {
        "target": result.target,
        "windows": len(windows),
        "relaxed_mean_abs_err": round(relaxed_err, 4),
        "nonrelaxed_mean_abs_err": round(nonrelaxed_err, 4),
    })

    assert relaxed_err < 0.08, "relaxed estimates must track the actual sums"
    assert nonrelaxed_err > relaxed_err, "non-relaxed must be worse"
    # One-sided error: the non-relaxed variant under-estimates.
    assert all(nonrelaxed[w] <= 1.05 for w in windows)
